package sched

// Work-stealing partitioning (the Stealing policy).
//
// Dynamic and Guided serialize every chunk grab through one shared atomic
// cursor — a centralized hot word that all P workers hammer, which is the
// contention pattern the CAS-LT cells were designed to avoid at the data
// level. Stealing removes the shared cursor from the common path entirely:
// each worker owns a bounded Chase–Lev deque seeded once per loop with the
// chunk descriptors of that worker's block share. The owner pops chunks
// from its own deque with plain loads and stores (one CAS only when racing
// a thief for the last element); a worker whose deque runs dry turns thief
// and CASes a chunk off the top of a randomly chosen victim's deque, with
// exponential backoff between unsuccessful sweeps.
//
// Because chunks are seeded up front and never pushed mid-loop, the deque
// is implicit: two atomic counters (top, bottom) index a virtual sequence
// of chunk descriptors derived arithmetically from the worker's block range
// [lo, hi) and the chunk size. There is no buffer array to race on, no
// resizing, and no ABA — top is strictly monotone within one loop.
//
// Seed order is chosen so the uncontended case degenerates to Block: the
// deque position q maps to chunk index nch-1-q, so the owner's LIFO pops
// walk its block share in ascending index order (stream-friendly, and the
// order the trace backend replays), while thieves take from the top — the
// chunk farthest from the owner's current working set.

import (
	"runtime"
	"sync/atomic"
)

const (
	// stealMinChunk is the smallest chunk the Stealing policy hands out;
	// below this the per-chunk dispatch cost dominates the work.
	stealMinChunk = 8
	// stealChunksPerWorker is the seeding target: each worker's share is cut
	// into about this many chunks, enough slack for thieves without
	// shredding locality.
	stealChunksPerWorker = 16
)

// StealChunk returns the chunk size the Stealing policy uses for an n-index
// loop over a party of p, bounded above by maxChunk (DefaultChunk when
// maxChunk <= 0). The trace backend and the bench scheduling model call this
// too: all backends must agree on the chunk geometry for the replay to be
// faithful.
func StealChunk(n, p, maxChunk int) int {
	if p < 1 {
		p = 1
	}
	if maxChunk <= 0 {
		maxChunk = DefaultChunk
	}
	c := n / (p * stealChunksPerWorker)
	if c < stealMinChunk {
		c = stealMinChunk
	}
	if c > maxChunk {
		c = maxChunk
	}
	return c
}

// stealDeque is one worker's implicit Chase–Lev deque over the virtual
// chunk positions [0, nch). Positions [top, bottom) are unclaimed; the
// owner pops at bottom, thieves CAS top forward. lo/hi/chunk/nch are plain
// fields: Reset writes them while the party is quiescent and the loop-entry
// barrier (or the team epoch word) publishes them before any claim.
type stealDeque struct {
	top    atomic.Int64
	bottom atomic.Int64
	lo     int64
	hi     int64
	chunk  int64
	nch    int64
	_      [128 - 6*8]byte // one deque per cache-line pair; no false sharing
}

// chunkAt maps deque position q to its chunk's index range. Position 0 (the
// steal end) is the highest chunk of the share; position nch-1 (the first
// owner pop) is the lowest.
func (d *stealDeque) chunkAt(q int64) (lo, hi int) {
	idx := d.nch - 1 - q
	clo := d.lo + idx*d.chunk
	chi := clo + d.chunk
	if chi > d.hi {
		chi = d.hi
	}
	return int(clo), int(chi)
}

// pop claims the bottom element (owner only). The only CAS is the
// last-element race against thieves.
func (d *stealDeque) pop() (q int64, ok bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	// Go's sync/atomic is sequentially consistent, so this load cannot be
	// reordered before the bottom store — a thief observing the old bottom
	// and this owner cannot both claim the same position.
	t := d.top.Load()
	if t < b {
		return b, true
	}
	if t == b {
		// Last element: race any thief that read the old bottom.
		ok = d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(t + 1)
		return b, ok
	}
	// Already empty; undo the decrement.
	d.bottom.Store(t)
	return 0, false
}

// steal claims the top element (thieves only). contended distinguishes a
// lost CAS race from an empty deque so the caller can count failures
// without retrying on exhausted victims.
func (d *stealDeque) steal() (q int64, ok, contended bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false, false
	}
	if d.top.CompareAndSwap(t, t+1) {
		return t, true, false
	}
	return 0, false, true
}

// empty reports whether the deque has no unclaimed positions.
func (d *stealDeque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}

// StealCounts summarizes one worker's share of a stealing loop.
type StealCounts struct {
	// Local counts chunks the worker popped from its own deque.
	Local uint64
	// Steals counts chunks taken from other workers' deques.
	Steals uint64
	// Fails counts steal CAS attempts lost to a racing claimant (empty
	// victims are not failures; they end the sweep).
	Fails uint64
}

// Stealer is the per-loop shared state of the Stealing policy: one deque
// per worker. A machine allocates one Stealer per party and Resets it for
// each stealing loop, exactly like a Cursor.
type Stealer struct {
	deques []stealDeque
	p      int
}

// NewStealer returns a stealer for a party of p workers.
func NewStealer(p int) *Stealer {
	if p < 1 {
		p = 1
	}
	return &Stealer{deques: make([]stealDeque, p), p: p}
}

// Reset seeds every worker's deque with the chunk descriptors of that
// worker's block share of a fresh index space [0, n), using
// StealChunk(n, p, maxChunk) as the chunk size. Like Cursor.Reset it is NOT
// safe against concurrent Run: the caller must publish it to the party
// through an acquire/release edge (a barrier, or the machine's team epoch
// word) before any worker claims.
func (s *Stealer) Reset(n, maxChunk int) {
	if n < 0 {
		n = 0
	}
	chunk := int64(StealChunk(n, s.p, maxChunk))
	for w := range s.deques {
		d := &s.deques[w]
		lo, hi := BlockRange(n, s.p, w)
		d.lo, d.hi, d.chunk = int64(lo), int64(hi), chunk
		d.nch = (int64(hi-lo) + chunk - 1) / chunk
		d.top.Store(0)
		d.bottom.Store(d.nch)
	}
}

// Run executes worker w's part of the current stealing loop: drain the own
// deque bottom-up (ascending index order), then turn thief until every
// deque in the party is empty. body is invoked with claimed chunk ranges
// [lo, hi); across the whole party every index is visited exactly once.
// Chunks in flight when Run returns belong to other workers — the loop's
// closing barrier, not Run, is what makes all effects visible.
func (s *Stealer) Run(w int, body func(lo, hi int)) StealCounts {
	var c StealCounts
	own := &s.deques[w]
	for {
		q, ok := own.pop()
		if !ok {
			break
		}
		lo, hi := own.chunkAt(q)
		body(lo, hi)
		c.Local++
	}
	if s.p == 1 {
		return c
	}
	// Own deque is dry: steal. Victim selection is a cheap xorshift walk —
	// random enough to avoid convoying, deterministic-free of shared state.
	rng := uint64(w)*0x9e3779b97f4a7c15 + 0x6b79d8a65d2c8f1d
	backoff := 1
	for {
		stole := false
		for tries := 0; tries < 2*s.p; tries++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			v := int(rng % uint64(s.p))
			if v == w {
				continue
			}
			q, ok, contended := s.deques[v].steal()
			if contended {
				c.Fails++
				continue
			}
			if !ok {
				continue
			}
			lo, hi := s.deques[v].chunkAt(q)
			body(lo, hi)
			c.Steals++
			stole = true
			backoff = 1
			break
		}
		if stole {
			continue
		}
		// Precise termination: an unclaimed chunk is always visible in some
		// deque (pop/steal linearize claims on top/bottom), so one clean
		// sweep over all deques proves there is nothing left to take.
		drained := true
		for v := range s.deques {
			if !s.deques[v].empty() {
				drained = false
				break
			}
		}
		if drained {
			return c
		}
		// Exponential backoff between sweeps; Gosched rather than spin so
		// oversubscribed parties (more workers than cores) make progress.
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff <<= 1
		}
	}
}
