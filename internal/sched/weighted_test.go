package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func prefix(weights []uint32) []uint32 {
	cum := make([]uint32, len(weights)+1)
	for i, w := range weights {
		cum[i+1] = cum[i] + w
	}
	return cum
}

func maxWeight(weights []uint32) uint32 {
	var m uint32
	for _, w := range weights {
		if w > m {
			m = w
		}
	}
	return m
}

// checkWeightedPartition verifies the two partitioner invariants from the
// package doc: shards cover [0, n) exactly, and every shard's weight is
// within one max item weight of the even share.
func checkWeightedPartition(t *testing.T, weights []uint32, p int) {
	t.Helper()
	cum := prefix(weights)
	n := len(weights)
	bounds := WeightedBounds(cum, p)
	if len(bounds) != p+1 {
		t.Fatalf("p=%d: got %d bounds, want %d", p, len(bounds), p+1)
	}
	if bounds[0] != 0 || bounds[p] != n {
		t.Fatalf("p=%d: bounds endpoints %d,%d, want 0,%d", p, bounds[0], bounds[p], n)
	}
	total := uint64(cum[n])
	share := (total + uint64(p) - 1) / uint64(p)
	limit := share + uint64(maxWeight(weights))
	for w := 0; w < p; w++ {
		lo, hi := bounds[w], bounds[w+1]
		if lo > hi {
			t.Fatalf("p=%d w=%d: bounds not monotone: [%d,%d)", p, w, lo, hi)
		}
		if glo, ghi := WeightedRange(cum, p, w); glo != lo || ghi != hi {
			t.Fatalf("p=%d w=%d: WeightedRange [%d,%d) != WeightedBounds [%d,%d)",
				p, w, glo, ghi, lo, hi)
		}
		got := uint64(cum[hi] - cum[lo])
		if got > limit {
			t.Fatalf("p=%d w=%d: shard weight %d exceeds even share %d + max item %d",
				p, w, got, share, maxWeight(weights))
		}
	}
}

func TestWeightedBoundsStructured(t *testing.T) {
	cases := map[string][]uint32{
		"empty":      {},
		"single":     {7},
		"uniform":    {1, 1, 1, 1, 1, 1, 1, 1, 1},
		"zeros":      {0, 0, 0, 0, 0},
		"hub-first":  {1000, 1, 1, 1, 1, 1, 1, 1},
		"hub-last":   {1, 1, 1, 1, 1, 1, 1, 1000},
		"hub-middle": {1, 1, 1, 5000, 1, 1, 1},
		"zero-tail":  {4, 4, 4, 4, 0, 0, 0, 0},
		"zero-head":  {0, 0, 0, 0, 4, 4, 4, 4},
	}
	for name, weights := range cases {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16, len(weights) + 3} {
			t.Run(name, func(t *testing.T) { checkWeightedPartition(t, weights, p) })
		}
	}
}

func TestWeightedBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64, rawP uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		weights := make([]uint32, n)
		for i := range weights {
			// Heavy-tailed: mostly small, occasionally huge.
			if r.Intn(10) == 0 {
				weights[i] = uint32(r.Intn(100000))
			} else {
				weights[i] = uint32(r.Intn(8))
			}
		}
		p := int(rawP)%16 + 1
		checkWeightedPartition(t, weights, p)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWeightedRangeOffsetOrigin checks that a sub-slice of a larger prefix
// array (nonzero cum[0]) partitions by relative weight, as team-mode
// frontier sharding relies on.
func TestWeightedRangeOffsetOrigin(t *testing.T) {
	cum := prefix([]uint32{5, 5, 1, 1, 1, 1, 1, 1, 1, 1})
	sub := cum[2:] // items 2..9, all weight 1, but sub[0] == 10
	lo, hi := WeightedRange(sub, 2, 0)
	if lo != 0 || hi != 4 {
		t.Fatalf("offset-origin shard 0 = [%d,%d), want [0,4)", lo, hi)
	}
	lo, hi = WeightedRange(sub, 2, 1)
	if lo != 4 || hi != 8 {
		t.Fatalf("offset-origin shard 1 = [%d,%d), want [4,8)", lo, hi)
	}
}

func BenchmarkWeightedRange(b *testing.B) {
	weights := make([]uint32, 1<<16)
	rng := rand.New(rand.NewSource(1))
	for i := range weights {
		weights[i] = uint32(rng.Intn(64))
	}
	cum := prefix(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := WeightedRange(cum, 8, i&7)
		if lo > hi {
			b.Fatal("bad range")
		}
	}
}
