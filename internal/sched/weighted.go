package sched

// Weighted (edge-balanced) partitioning.
//
// BlockRange splits [0, n) into ranges of near-equal *count*, which is the
// right cost model when every index does the same work. Graph kernels break
// that assumption: a vertex loop that walks each vertex's arcs costs deg(v)
// per index, and on skewed-degree graphs (R-MAT, star) an equal-count split
// hands one worker a hub's worth of arcs while the rest idle at the round
// barrier. The functions here split by *cumulative weight* instead: given a
// monotone prefix-weight array (for CSR graphs, the offsets array itself),
// they place the p-1 interior boundaries by binary search so every shard
// carries a near-equal weight.

// WeightedBounds returns p+1 boundaries over [0, n) such that shard w is
// [bounds[w], bounds[w+1]) and the shards partition [0, n) exactly with
// near-equal total weight. cum must be a non-decreasing prefix-weight array
// of length n+1 with cum[0] as the zero origin: item i has weight
// cum[i+1]-cum[i]. For CSR graphs, pass the offsets array verbatim.
//
// Each shard's weight is at most ceil(W/p) + maxItemWeight, where W is the
// total weight: the boundary search cannot split a single item, so a shard
// overshoots the even share by at most the heaviest item that straddles its
// end. Zero-weight items (isolated vertices) are carried by whichever shard
// spans them; the final boundary is always n, so coverage is exact even when
// a weightless tail follows the last weighted item.
func WeightedBounds(cum []uint32, p int) []int {
	if p < 1 {
		p = 1
	}
	n := len(cum) - 1
	if n < 0 {
		n = 0
	}
	bounds := make([]int, p+1)
	for w := 1; w < p; w++ {
		bounds[w] = weightedBoundary(cum, n, p, w)
	}
	bounds[p] = n
	return bounds
}

// WeightedRange returns the contiguous range [lo, hi) owned by worker w of a
// party of p under the prefix-weight array cum, equal to the w-th shard of
// WeightedBounds without materializing the full boundary slice. Workers can
// therefore derive their own shard independently (e.g. inside a team region
// right after the prefix array is published) with two binary searches.
func WeightedRange(cum []uint32, p, w int) (lo, hi int) {
	if p < 1 {
		p = 1
	}
	n := len(cum) - 1
	if n < 0 {
		n = 0
	}
	lo = weightedBoundary(cum, n, p, w)
	if w+1 >= p {
		return lo, n
	}
	return lo, weightedBoundary(cum, n, p, w+1)
}

// weightedBoundary returns the smallest v in [0, n] whose prefix weight
// reaches the even share w*W/p, i.e. min{v : cum[v]*p >= W*w}. Comparing
// cross-products in uint64 keeps the w*W/p rational exact with no overflow
// for weights and party sizes that fit uint32.
func weightedBoundary(cum []uint32, n, p, w int) int {
	if w <= 0 || n == 0 {
		return 0
	}
	if w >= p {
		return n
	}
	base := uint64(cum[0])
	target := (uint64(cum[n]) - base) * uint64(w)
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if (uint64(cum[mid])-base)*uint64(p) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
