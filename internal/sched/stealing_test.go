package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestStealChunkBounds(t *testing.T) {
	cases := []struct{ n, p, maxChunk, want int }{
		{0, 4, 0, stealMinChunk},                              // empty loop still gets a sane chunk
		{100, 4, 0, stealMinChunk},                            // small n floors at the minimum
		{1 << 20, 4, 0, DefaultChunk},                         // large n caps at the default
		{1 << 20, 4, 64, 64},                                  // explicit machine chunk caps
		{1 << 14, 4, 0, 1 << 14 / (4 * stealChunksPerWorker)}, // interior
		{1000, 0, 0, 1000 / stealChunksPerWorker},             // p clamped to 1
		{1 << 20, 1, -5, DefaultChunk},                        // maxChunk <= 0 falls back
	}
	for _, c := range cases {
		if got := StealChunk(c.n, c.p, c.maxChunk); got != c.want {
			t.Errorf("StealChunk(%d, %d, %d) = %d, want %d", c.n, c.p, c.maxChunk, got, c.want)
		}
	}
}

// An uncontended owner must drain its own deque first, in ascending index
// order over exactly its block share — the property the trace backend's
// deterministic replay depends on. Run here as a single worker against
// still-seeded victims: the own pops come first and in order, then the
// thief phase sweeps up everything the absent workers left behind.
func TestStealerOwnerOrderIsBlock(t *testing.T) {
	const n, p = 1000, 4
	s := NewStealer(p)
	s.Reset(n, 0)
	blo, bhi := BlockRange(n, p, 0)
	next := blo
	ownDone := false
	covered := make([]int, n)
	c := s.Run(0, func(lo, hi int) {
		if !ownDone {
			if lo != next {
				t.Fatalf("own chunk starts at %d, want %d (ascending order broken)", lo, next)
			}
			next = hi
			if next == bhi {
				ownDone = true
			}
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	})
	if !ownDone {
		t.Fatalf("own share drained only to %d, want %d", next, bhi)
	}
	if c.Local == 0 || c.Steals == 0 {
		t.Fatalf("lone worker should both pop (%d) and steal (%d)", c.Local, c.Steals)
	}
	// The other workers arrive late to a picked-clean party.
	for w := 1; w < p; w++ {
		s.Run(w, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
	}
	for i, k := range covered {
		if k != 1 {
			t.Fatalf("index %d covered %d times", i, k)
		}
	}
}

func TestStealerConcurrentExactCover(t *testing.T) {
	cases := []struct{ n, p, maxChunk int }{
		{0, 4, 0}, {1, 4, 0}, {7, 8, 0}, {1000, 4, 16}, {10000, 8, 0}, {257, 3, 8},
	}
	for _, c := range cases {
		counts := make([]atomic.Int32, c.n)
		s := NewStealer(c.p)
		s.Reset(c.n, c.maxChunk)
		var wg sync.WaitGroup
		wg.Add(c.p)
		var local, steals atomic.Uint64
		for w := 0; w < c.p; w++ {
			w := w
			go func() {
				defer wg.Done()
				sc := s.Run(w, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
				local.Add(sc.Local)
				steals.Add(sc.Steals)
			}()
		}
		wg.Wait()
		for i := range counts {
			if k := counts[i].Load(); k != 1 {
				t.Fatalf("n=%d p=%d chunk=%d: index %d visited %d times", c.n, c.p, c.maxChunk, i, k)
			}
		}
		chunk := int64(StealChunk(c.n, c.p, c.maxChunk))
		wantChunks := int64(0)
		for w := 0; w < c.p; w++ {
			lo, hi := BlockRange(c.n, c.p, w)
			wantChunks += (int64(hi-lo) + chunk - 1) / chunk
		}
		if got := local.Load() + steals.Load(); int64(got) != wantChunks {
			t.Fatalf("n=%d p=%d: %d chunks claimed, want %d", c.n, c.p, got, wantChunks)
		}
	}
}

// Reuse across Reset mirrors the team backend's per-round reuse.
func TestStealerResetReuse(t *testing.T) {
	s := NewStealer(3)
	for round, n := range []int{100, 0, 57, 1000} {
		s.Reset(n, 0)
		counts := make([]atomic.Int32, n)
		var wg sync.WaitGroup
		wg.Add(3)
		for w := 0; w < 3; w++ {
			w := w
			go func() {
				defer wg.Done()
				s.Run(w, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
			}()
		}
		wg.Wait()
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("round %d n=%d: index %d not covered exactly once", round, n, i)
			}
		}
	}
}

// Property test: exact cover for arbitrary shapes, including n < p and a
// negative n (clamped to empty).
func TestQuickStealerExactCover(t *testing.T) {
	f := func(nRaw uint16, pRaw, chunkRaw uint8) bool {
		n := int(nRaw) % 3000
		p := int(pRaw)%8 + 1
		maxChunk := int(chunkRaw) % 64
		counts := make([]atomic.Int32, n)
		s := NewStealer(p)
		s.Reset(n, maxChunk)
		var wg sync.WaitGroup
		wg.Add(p)
		for w := 0; w < p; w++ {
			w := w
			go func() {
				defer wg.Done()
				s.Run(w, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						counts[i].Add(1)
					}
				})
			}()
		}
		wg.Wait()
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStealerNegativeN(t *testing.T) {
	s := NewStealer(2)
	s.Reset(-5, 0)
	ran := false
	s.Run(0, func(lo, hi int) { ran = true })
	s.Run(1, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("stealer visited indices of a negative index space")
	}
}
