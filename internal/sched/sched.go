// Package sched partitions PRAM parallel-for index spaces over a fixed set
// of physical workers.
//
// A PRAM algorithm step assigns one virtual processor to each of n indices;
// a physical machine has only P workers. Following Brent's scheduling
// theorem (the paper's Section 6), the step's T(n) = n/P cost is achieved by
// work-sharing the index space over the workers. How indices map to workers
// affects locality and load balance but not correctness; this package
// offers the three standard policies plus a guided variant, mirroring
// OpenMP's schedule(static), schedule(static,1), schedule(dynamic,c) and
// schedule(guided) clauses:
//
//   - Block:   worker w owns one contiguous chunk of ≈n/P indices.
//   - Cyclic:  worker w owns indices w, w+P, w+2P, … (fine interleaving).
//   - Dynamic: workers repeatedly grab fixed-size chunks from a shared
//     atomic cursor; balances irregular per-index work at the cost of one
//     atomic fetch-add per chunk.
//   - Guided:  like Dynamic but with geometrically shrinking chunks.
//
// All policies produce exact partitions: every index in [0, n) is visited
// exactly once across the party.
//
// Everything here is a PRODUCTION path: the machine's pool and team
// backends and the trace replay partition every work-shared loop through
// this package (Block by default; BlockRange's boundaries are part of the
// exec contract — kernels like the frontier BFS re-derive them, and the
// trace backend replays them, so all backends must agree). The weighted
// variants (weighted.go) serve the edge-balanced partitioning axis.
// Nothing in this package is test-only.
package sched

import "sync/atomic"

// Policy selects a partitioning strategy.
type Policy int

const (
	// Block assigns each worker one contiguous range.
	Block Policy = iota
	// Cyclic assigns indices round-robin with stride = party size.
	Cyclic
	// Dynamic hands out fixed-size chunks from a shared cursor.
	Dynamic
	// Guided hands out geometrically shrinking chunks from a shared cursor.
	Guided
	// Stealing seeds per-worker deques with the chunks of each worker's
	// block share; idle workers steal chunks from random victims. No shared
	// cursor on the common path — see Stealer.
	Stealing
)

// Policies lists all policies in presentation order.
var Policies = []Policy{Block, Cyclic, Dynamic, Guided, Stealing}

// String names the policy as the -policy flag spells it ("block",
// "cyclic", "dynamic", "guided", "stealing").
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	case Stealing:
		return "stealing"
	default:
		return "unknown-policy"
	}
}

// ParsePolicy converts a policy name (as produced by String) back to a
// Policy.
func ParsePolicy(s string) (Policy, bool) {
	for _, p := range Policies {
		if p.String() == s {
			return p, true
		}
	}
	return 0, false
}

// DefaultChunk is the chunk size used by Dynamic when the caller passes
// chunk <= 0, and the minimum chunk for Guided.
const DefaultChunk = 256

// BlockRange returns the contiguous range [lo, hi) owned by worker w of a
// party of p over the index space [0, n). Ranges of all workers partition
// [0, n) exactly, and sizes differ by at most one.
func BlockRange(n, p, w int) (lo, hi int) {
	q, r := n/p, n%p
	// The first r workers get q+1 indices, the rest get q.
	if w < r {
		lo = w * (q + 1)
		return lo, lo + q + 1
	}
	lo = r*(q+1) + (w-r)*q
	return lo, lo + q
}

// Cursor is the shared state of the Dynamic and Guided policies for one
// parallel loop instance: a monotone claim cursor over [0, n).
type Cursor struct {
	next    atomic.Int64
	n       int64
	parties int64
	chunk   int64
	guided  bool
	_       [16]byte // keep the hot counter away from neighbours
}

// NewCursor returns a cursor over [0, n) for a party of p workers.
// For Dynamic, chunk is the grab size (DefaultChunk if <= 0). For Guided,
// chunk is the minimum grab size.
func NewCursor(policy Policy, n, p, chunk int) *Cursor {
	// Sanitize here rather than in every caller: a nonsensical chunk falls
	// back to the default, a negative index space is empty, and a party
	// larger than the index space (n < p) must not push Guided's
	// remaining/parties quotient to zero-size grabs — Next floors every
	// grab at the minimum chunk, so oversubscribed parties still make
	// progress one chunk at a time.
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	if n < 0 {
		n = 0
	}
	return &Cursor{
		n:       int64(n),
		parties: int64(max(p, 1)),
		chunk:   int64(chunk),
		guided:  policy == Guided,
	}
}

// Next claims the next chunk, returning [lo, hi) and ok=false when the
// index space is exhausted. Safe for concurrent use by all workers.
func (c *Cursor) Next() (lo, hi int, ok bool) {
	size := c.chunk
	if c.guided {
		// Guided: chunk ≈ remaining / parties, floored at the minimum.
		cur := c.next.Load()
		remaining := c.n - cur
		if remaining <= 0 {
			return 0, 0, false
		}
		size = remaining / c.parties
		if size < c.chunk {
			size = c.chunk
		}
	}
	start := c.next.Add(size) - size
	if start >= c.n {
		return 0, 0, false
	}
	end := start + size
	if end > c.n {
		end = c.n
	}
	return int(start), int(end), true
}

// Reset rewinds the cursor to the start of a fresh index space [0, n),
// keeping the policy, party size and chunk. It lets a long-lived loop
// context (e.g. a team-mode kernel) reuse one cursor allocation across many
// rounds instead of allocating one per round. Reset is NOT safe against
// concurrent Next calls: the caller must publish it to the other workers
// through an acquire/release edge (a barrier, or the epoch word the
// machine's team loops use) before any of them claims.
func (c *Cursor) Reset(n int) {
	c.n = int64(n)
	c.next.Store(0)
}

// For iterates worker w's share of [0, n) under the given policy, invoking
// body(i) exactly once for each owned index. For Dynamic and Guided the
// caller must pass the loop's shared Cursor; for Block and Cyclic, cur may
// be nil.
func For(policy Policy, cur *Cursor, n, p, w int, body func(i int)) {
	switch policy {
	case Block:
		lo, hi := BlockRange(n, p, w)
		for i := lo; i < hi; i++ {
			body(i)
		}
	case Cyclic:
		for i := w; i < n; i += p {
			body(i)
		}
	case Dynamic, Guided:
		for {
			lo, hi, ok := cur.Next()
			if !ok {
				return
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	case Stealing:
		// Work stealing needs per-loop deque state (a Stealer), which the
		// machine owns and drives directly. Callers that reach this
		// cursor-shaped entry point (serial fallbacks, p == 1) get the
		// stealing policy's seed order, which is exactly the block
		// partition: each worker's deque is seeded with its block share,
		// and an uncontended owner drains it in ascending index order.
		lo, hi := BlockRange(n, p, w)
		for i := lo; i < hi; i++ {
			body(i)
		}
	default:
		panic("sched: unknown policy " + policy.String())
	}
}
