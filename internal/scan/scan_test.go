package scan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crcwpram/internal/core/machine"
)

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func seqExclusive(in []uint32) ([]uint32, uint32) {
	out := make([]uint32, len(in))
	var run uint32
	for i, v := range in {
		out[i] = run
		run += v
	}
	return out, run
}

func seqInclusive(in []uint32) ([]uint32, uint32) {
	out := make([]uint32, len(in))
	var run uint32
	for i, v := range in {
		run += v
		out[i] = run
	}
	return out, run
}

func randInput(n int, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(rng.Intn(100))
	}
	return in
}

func TestBlockScansMatchSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		m := testMachine(t, p)
		for _, n := range []int{0, 1, 2, 7, 100, 1023, 4096} {
			in := randInput(n, int64(n)+1)
			out := make([]uint32, n)

			wantEx, wantTotal := seqExclusive(in)
			if got := BlockExclusive(m, in, out); got != wantTotal {
				t.Fatalf("p=%d n=%d: exclusive total %d, want %d", p, n, got, wantTotal)
			}
			for i := range out {
				if out[i] != wantEx[i] {
					t.Fatalf("p=%d n=%d: exclusive out[%d] = %d, want %d", p, n, i, out[i], wantEx[i])
				}
			}

			wantIn, _ := seqInclusive(in)
			if got := BlockInclusive(m, in, out); got != wantTotal {
				t.Fatalf("p=%d n=%d: inclusive total %d, want %d", p, n, got, wantTotal)
			}
			for i := range out {
				if out[i] != wantIn[i] {
					t.Fatalf("p=%d n=%d: inclusive out[%d] = %d, want %d", p, n, i, out[i], wantIn[i])
				}
			}
		}
	}
}

func TestBlockScanInPlace(t *testing.T) {
	m := testMachine(t, 4)
	in := randInput(500, 9)
	want, wantTotal := seqExclusive(in)
	buf := append([]uint32(nil), in...)
	if got := BlockExclusive(m, buf, buf); got != wantTotal {
		t.Fatalf("in-place total %d, want %d", got, wantTotal)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("in-place out[%d] = %d, want %d", i, buf[i], want[i])
		}
	}
}

func TestBlockScanLengthMismatchPanics(t *testing.T) {
	m := testMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	BlockExclusive(m, make([]uint32, 3), make([]uint32, 4))
}

func TestHillisSteeleMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, n := range []int{0, 1, 2, 3, 8, 100, 1000} {
			in := randInput(n, int64(n)+5)
			out := make([]uint32, n)
			want, wantTotal := seqInclusive(in)
			if got := HillisSteele(m, in, out); n > 0 && got != wantTotal {
				t.Fatalf("p=%d n=%d: total %d, want %d", p, n, got, wantTotal)
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("p=%d n=%d: out[%d] = %d, want %d", p, n, i, out[i], want[i])
				}
			}
		}
	}
}

func TestCompactIndices(t *testing.T) {
	m := testMachine(t, 4)
	flags := []uint32{1, 0, 0, 1, 1, 0, 1, 0, 0, 0, 1}
	out := make([]uint32, len(flags))
	n := CompactIndices(m, flags, out)
	want := []uint32{0, 3, 4, 6, 10}
	if n != len(want) {
		t.Fatalf("count = %d, want %d", n, len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out[:n], want)
		}
	}
	// No matches / all matches / empty input.
	if CompactIndices(m, make([]uint32, 10), out) != 0 {
		t.Fatal("zero flags compacted to non-empty")
	}
	all := []uint32{1, 1, 1}
	if CompactIndices(m, all, out) != 3 || out[0] != 0 || out[2] != 2 {
		t.Fatal("all-set flags wrong")
	}
	if CompactIndices(m, nil, out) != 0 {
		t.Fatal("empty input wrong")
	}
}

func TestCompactIndicesOutTooSmallPanics(t *testing.T) {
	m := testMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("undersized out accepted")
		}
	}()
	CompactIndices(m, []uint32{1, 1, 1}, make([]uint32, 1))
}

// Property: both scans agree with the sequential reference and with each
// other on random inputs, sizes and worker counts.
func TestQuickScansAgree(t *testing.T) {
	f := func(nRaw uint16, pRaw uint8, seed int64) bool {
		n := int(nRaw) % 3000
		p := int(pRaw)%8 + 1
		m := machine.New(p)
		defer m.Close()
		in := randInput(n, seed)
		blockOut := make([]uint32, n)
		hsOut := make([]uint32, n)
		want, wantTotal := seqInclusive(in)
		t1 := BlockInclusive(m, in, blockOut)
		HillisSteele(m, in, hsOut)
		if n > 0 && t1 != wantTotal {
			return false
		}
		for i := 0; i < n; i++ {
			if blockOut[i] != want[i] || hsOut[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: compaction output is exactly the ascending list of set
// indices.
func TestQuickCompact(t *testing.T) {
	f := func(raw []bool, pRaw uint8) bool {
		p := int(pRaw)%8 + 1
		m := machine.New(p)
		defer m.Close()
		flags := make([]uint32, len(raw))
		var want []uint32
		for i, b := range raw {
			if b {
				flags[i] = 1
				want = append(want, uint32(i))
			}
		}
		out := make([]uint32, len(flags))
		n := CompactIndices(m, flags, out)
		if n != len(want) {
			return false
		}
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScans(b *testing.B) {
	const n = 1 << 18
	in := randInput(n, 1)
	out := make([]uint32, n)
	m := machine.New(4)
	defer m.Close()
	b.Run("block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BlockInclusive(m, in, out)
		}
	})
	b.Run("hillis-steele", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			HillisSteele(m, in, out)
		}
	})
}
