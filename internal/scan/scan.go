// Package scan implements parallel prefix sums (scans) and stream
// compaction on the PRAM machine.
//
// Prefix sum is the PRAM primitive behind the gatekeeper method's
// ancestry: the XMT design the paper compares against (Vishkin et al.)
// exposes a hardware prefix-sum unit and implements concurrent writes with
// it. This package provides the software equivalents:
//
//   - BlockExclusive / BlockInclusive: the practical two-phase block scan,
//     W(N) work, D(N/P + P) depth — per-worker partial sums, a serial scan
//     over the P partials, and a per-worker fixup pass.
//   - HillisSteele: the textbook D(log N) PRAM scan with W(N log N) work,
//     kept as the direct lock-step transcription of the PRAM algorithm and
//     for the work-vs-depth ablation.
//   - CompactIndices: stream compaction (gather the indices satisfying a
//     predicate), the building block of frontier-based BFS.
//
// All functions treat each call as a sequence of PRAM rounds on the
// caller's machine; they are safe to call back to back on the same arrays.
package scan

import (
	"fmt"

	"crcwpram/internal/core/machine"
	"crcwpram/internal/sched"
)

// BlockExclusive computes the exclusive prefix sum of in into out
// (out[i] = in[0]+...+in[i-1], out[0] = 0) and returns the total. out may
// alias in. Panics if the lengths differ.
func BlockExclusive(m *machine.Machine, in, out []uint32) uint32 {
	return blockScan(m, in, out, false)
}

// BlockInclusive computes the inclusive prefix sum of in into out
// (out[i] = in[0]+...+in[i]) and returns the total. out may alias in.
func BlockInclusive(m *machine.Machine, in, out []uint32) uint32 {
	return blockScan(m, in, out, true)
}

func blockScan(m *machine.Machine, in, out []uint32, inclusive bool) uint32 {
	if len(in) != len(out) {
		panic(fmt.Sprintf("scan: len(in)=%d != len(out)=%d", len(in), len(out)))
	}
	n := len(in)
	if n == 0 {
		return 0
	}
	p := m.P()
	partial := make([]uint32, p)

	// Round 1: per-worker block sums.
	m.ParallelRange(n, func(lo, hi, w int) {
		var s uint32
		for i := lo; i < hi; i++ {
			s += in[i]
		}
		partial[w] = s
	})

	// Serial exclusive scan over the P partials (P is asymptotically
	// constant, as the paper puts it).
	var total uint32
	for w := 0; w < p; w++ {
		partial[w], total = total, total+partial[w]
	}

	// Round 2: per-worker fixup. Reading in[i] before writing out[i]
	// makes aliasing in == out safe.
	m.ParallelRange(n, func(lo, hi, w int) {
		run := partial[w]
		for i := lo; i < hi; i++ {
			v := in[i]
			if inclusive {
				run += v
				out[i] = run
			} else {
				out[i] = run
				run += v
			}
		}
	})
	return total
}

// HillisSteele computes the inclusive prefix sum of in into out with the
// classic log-depth PRAM algorithm: log2(N) rounds of
// out[i] += out[i-2^k], double-buffered to respect reads-before-writes.
// Returns the total. out must not alias in.
func HillisSteele(m *machine.Machine, in, out []uint32) uint32 {
	if len(in) != len(out) {
		panic(fmt.Sprintf("scan: len(in)=%d != len(out)=%d", len(in), len(out)))
	}
	n := len(in)
	if n == 0 {
		return 0
	}
	cur := out
	copy(cur, in)
	next := make([]uint32, n)
	for stride := 1; stride < n; stride *= 2 {
		s := stride
		m.ParallelFor(n, func(i int) {
			if i >= s {
				next[i] = cur[i] + cur[i-s]
			} else {
				next[i] = cur[i]
			}
		})
		cur, next = next, cur
	}
	if &cur[0] != &out[0] {
		copy(out, cur)
	}
	return out[n-1]
}

// CompactIndices gathers, in ascending order, every index i in [0, n) for
// which flags[i] != 0, writing them into out, and returns how many there
// are. out must have length >= the number of set flags (n always
// suffices). It is the scan-based stream compaction used by frontier BFS:
// one counting round, a serial P-scan, and one scatter round.
func CompactIndices(m *machine.Machine, flags []uint32, out []uint32) int {
	n := len(flags)
	if n == 0 {
		return 0
	}
	p := m.P()
	counts := make([]uint32, p)
	m.ParallelRange(n, func(lo, hi, w int) {
		var c uint32
		for i := lo; i < hi; i++ {
			if flags[i] != 0 {
				c++
			}
		}
		counts[w] = c
	})
	var total uint32
	for w := 0; w < p; w++ {
		counts[w], total = total, total+counts[w]
	}
	if int(total) > len(out) {
		panic(fmt.Sprintf("scan: out has %d slots for %d matches", len(out), total))
	}
	m.ParallelRange(n, func(lo, hi, w int) {
		pos := counts[w]
		for i := lo; i < hi; i++ {
			if flags[i] != 0 {
				out[pos] = uint32(i)
				pos++
			}
		}
	})
	return int(total)
}

// BlockRangeOf exposes the worker block boundaries the scans use, so
// callers can reason about which worker owns an index (primarily for
// tests).
func BlockRangeOf(n, p, w int) (int, int) { return sched.BlockRange(n, p, w) }
