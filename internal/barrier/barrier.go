// Package barrier provides reusable synchronization barriers for a fixed
// party of workers. A barrier is the synchronization point the paper
// requires between a concurrent-write step and any dependent read: PRAM
// lock-step semantics are recovered on an asynchronous machine by placing a
// barrier between rounds (Ghanim et al., ICPP 2021, Section 4, following
// ICE/XMT practice).
//
// Three classic constructions are provided so the PRAM machine can be
// ablated over its synchronization substrate:
//
//   - Central: a mutex + condition variable counter barrier. Simple, one
//     cache line of state, O(P) serialized updates per phase.
//   - SenseReversing: a single atomic counter plus a phase "sense" flag
//     that flips each phase, with spin-then-yield waiting. The standard
//     high-performance choice on small core counts.
//   - Tree: a static arrival tree of sense-reversing nodes with fan-in 4,
//     reducing contention to O(log P) per-line traffic on large parties.
//
// All barriers implement the Barrier interface and are reusable: Wait may be
// called any number of phases in a row by exactly the fixed party size.
package barrier

// Barrier synchronizes a fixed party of workers. Wait blocks until all
// parties of the current phase have arrived, then releases them together.
// The same parties must call Wait in every phase; a Barrier is not a
// one-shot WaitGroup.
type Barrier interface {
	// Wait blocks worker (0 <= worker < Parties()) until all parties have
	// arrived at the current phase. Central and Sense ignore the worker
	// id; Tree uses it to pick the worker's arrival leaf.
	Wait(worker int)
	// Parties returns the fixed party size.
	Parties() int
}

// Kind selects a barrier construction.
type Kind int

const (
	// KindCentral is the mutex + condvar counter barrier.
	KindCentral Kind = iota
	// KindSense is the sense-reversing atomic barrier.
	KindSense
	// KindTree is the fan-in-4 arrival tree of sense-reversing nodes.
	KindTree
)

func (k Kind) String() string {
	switch k {
	case KindCentral:
		return "central"
	case KindSense:
		return "sense"
	case KindTree:
		return "tree"
	default:
		return "unknown-barrier"
	}
}

// Kinds lists all constructions in presentation order.
var Kinds = []Kind{KindCentral, KindSense, KindTree}

// ParseKind converts a kind name (as produced by String) back to a Kind.
func ParseKind(s string) (Kind, bool) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// New returns a barrier of the given kind for the given party size.
// parties must be >= 1.
func New(k Kind, parties int) Barrier {
	if parties < 1 {
		panic("barrier: parties must be >= 1")
	}
	switch k {
	case KindCentral:
		return NewCentral(parties)
	case KindSense:
		return NewSense(parties)
	case KindTree:
		return NewTree(parties)
	default:
		panic("barrier: unknown kind " + k.String())
	}
}
