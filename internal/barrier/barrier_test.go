package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func forEachKind(t *testing.T, f func(t *testing.T, k Kind)) {
	t.Helper()
	for _, k := range Kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) { f(t, k) })
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Fatalf("ParseKind(%q) = (%v, %v)", k.String(), got, ok)
		}
	}
	if _, ok := ParseKind("nope"); ok {
		t.Fatal("ParseKind accepted unknown name")
	}
}

func TestNewRejectsZeroParties(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		defer func() {
			if recover() == nil {
				t.Fatal("New with 0 parties did not panic")
			}
		}()
		New(k, 0)
	})
}

func TestSinglePartyNeverBlocks(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		b := New(k, 1)
		doneCh := make(chan struct{})
		go func() {
			for i := 0; i < 1000; i++ {
				b.Wait(0)
			}
			close(doneCh)
		}()
		select {
		case <-doneCh:
		case <-time.After(5 * time.Second):
			t.Fatal("single-party barrier blocked")
		}
	})
}

// The fundamental barrier property: no worker enters phase k+1 until every
// worker has finished phase k. Each worker increments a per-phase counter
// before the barrier; after the barrier the counter must equal the party
// size.
func TestNoWorkerPassesEarly(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		for _, parties := range []int{2, 3, 4, 7, 16, 33} {
			const phases = 200
			b := New(k, parties)
			counts := make([]atomic.Int32, phases)
			var violated atomic.Bool
			var wg sync.WaitGroup
			wg.Add(parties)
			for w := 0; w < parties; w++ {
				w := w
				go func() {
					defer wg.Done()
					for p := 0; p < phases; p++ {
						counts[p].Add(1)
						b.Wait(w)
						if got := counts[p].Load(); got != int32(parties) {
							// Record but keep participating so the other
							// workers are not deadlocked at the barrier.
							violated.Store(true)
						}
					}
				}()
			}
			wg.Wait()
			if violated.Load() {
				t.Fatalf("%v/%d parties: a worker passed the barrier before all arrived", k, parties)
			}
		}
	})
}

// Reusability across many phases with workers doing uneven amounts of work
// between phases (stresses the sense-derivation logic).
func TestUnevenWorkAcrossPhases(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		const parties = 8
		const phases = 300
		b := New(k, parties)
		var total atomic.Int64
		var wg sync.WaitGroup
		wg.Add(parties)
		for w := 0; w < parties; w++ {
			w := w
			go func() {
				defer wg.Done()
				spin := 0
				for p := 0; p < phases; p++ {
					// Worker-and-phase-dependent delay.
					for i := 0; i < (w*31+p*7)%200; i++ {
						spin++
					}
					total.Add(1)
					b.Wait(w)
				}
				_ = spin
			}()
		}
		wg.Wait()
		if got := total.Load(); got != parties*phases {
			t.Fatalf("%v: total = %d, want %d", k, got, parties*phases)
		}
	})
}

func TestParties(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		for _, p := range []int{1, 2, 5, 64} {
			if got := New(k, p).Parties(); got != p {
				t.Fatalf("%v: Parties() = %d, want %d", k, got, p)
			}
		}
	})
}

// Property: for any party size 1..24 and phase count 1..50, a full run
// completes (no deadlock) and observes the barrier invariant.
func TestQuickBarrierInvariant(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		f := func(pRaw, phRaw uint8) bool {
			parties := int(pRaw)%24 + 1
			phases := int(phRaw)%50 + 1
			b := New(k, parties)
			counts := make([]atomic.Int32, phases)
			ok := atomic.Bool{}
			ok.Store(true)
			var wg sync.WaitGroup
			wg.Add(parties)
			for w := 0; w < parties; w++ {
				w := w
				go func() {
					defer wg.Done()
					for p := 0; p < phases; p++ {
						counts[p].Add(1)
						b.Wait(w)
						if counts[p].Load() != int32(parties) {
							// Keep participating to avoid deadlocking the
							// rest of the party.
							ok.Store(false)
						}
					}
				}()
			}
			wg.Wait()
			return ok.Load()
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func BenchmarkBarrierPhase(b *testing.B) {
	for _, k := range Kinds {
		for _, parties := range []int{2, 4, 8, 16} {
			b.Run(k.String()+"/p="+itoa(parties), func(b *testing.B) {
				bar := New(k, parties)
				var wg sync.WaitGroup
				wg.Add(parties)
				phases := b.N
				b.ResetTimer()
				for w := 0; w < parties; w++ {
					w := w
					go func() {
						defer wg.Done()
						for p := 0; p < phases; p++ {
							bar.Wait(w)
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
