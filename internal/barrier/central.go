package barrier

import "sync"

// Central is the textbook counter barrier: a mutex-protected arrival count
// and a condition variable on which early arrivals sleep. The last arrival
// of each phase advances the generation and broadcasts.
//
// Central is the most portable and the friendliest to oversubscription
// (sleeping waiters consume no CPU), at the cost of O(P) serialized lock
// acquisitions per phase.
type Central struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

// NewCentral returns a central barrier for the given party size.
func NewCentral(parties int) *Central {
	if parties < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &Central{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Parties returns the fixed party size.
func (b *Central) Parties() int { return b.parties }

// Wait blocks until all parties of the current phase have arrived. The
// worker id is ignored.
func (b *Central) Wait(worker int) {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.parties {
		// Last arrival: open the next phase and release everyone.
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
