package barrier

import (
	"runtime"
	"sync/atomic"
)

// spinsBeforeYield bounds busy-waiting before a waiter starts yielding its
// thread to the scheduler. Pure spinning is fastest when every party has a
// dedicated core (the paper sets OMP_WAIT_POLICY=active for exactly this
// reason); yielding keeps the barrier live-lock free when goroutines
// outnumber cores, which is the common case for this library's tests.
const spinsBeforeYield = 128

// Sense is a sense-reversing barrier: one shared atomic arrival counter and
// a global sense word that flips each phase. Instead of goroutine-local
// sense (Go has no cheap goroutine-local storage), each Wait derives the
// sense that will end its phase from the shared sense word at entry. This is
// sound because a party reads the sense word before decrementing the arrival
// counter, and the flip can only happen after every party of the phase has
// decremented — so all parties of a phase agree on the release sense.
type Sense struct {
	parties int32
	count   atomic.Int32  // arrivals remaining in the current phase
	sense   atomic.Uint32 // flips 0/1 each phase
}

// NewSense returns a sense-reversing barrier for the given party size.
func NewSense(parties int) *Sense {
	if parties < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &Sense{parties: int32(parties)}
	b.count.Store(int32(parties))
	return b
}

// Parties returns the fixed party size.
func (b *Sense) Parties() int { return int(b.parties) }

// Wait blocks until all parties of the current phase have arrived. The
// worker id is ignored.
func (b *Sense) Wait(worker int) {
	local := b.sense.Load() ^ 1 // the sense value that ends this phase
	if b.count.Add(-1) == 0 {
		// Last arrival: reset the count for the next phase, then flip the
		// sense to release the waiters. Order matters — count must be
		// ready before anyone leaves.
		b.count.Store(b.parties)
		b.sense.Store(local)
		return
	}
	for spins := 0; b.sense.Load() != local; spins++ {
		if spins > spinsBeforeYield {
			runtime.Gosched()
		}
	}
}
