package barrier

import (
	"runtime"
	"sync/atomic"
)

// treeFanIn is the arrival-tree radix. Fan-in 4 is the classic compromise:
// contention per node stays low while the tree stays shallow.
const treeFanIn = 4

type treeNode struct {
	count  atomic.Int32
	sense  atomic.Uint32
	init   int32
	parent *treeNode
	_      [CachePad]byte
}

// CachePad pads tree nodes to separate cache lines.
const CachePad = 40

// Tree is a static arrival-tree barrier: workers are grouped into nodes of
// fan-in 4; the last arrival at a node propagates to the parent, and the
// arrival at the root flips a global sense that releases every waiter.
// Per-phase coherence traffic is O(P/fanIn) lines instead of all P parties
// hammering one line.
//
// Unlike Central and Sense, Tree assigns each worker a fixed leaf slot, so
// the worker id passed to Wait selects the arrival leaf and must be the
// caller's stable id in [0, Parties()).
type Tree struct {
	parties int
	leaves  []*treeNode // leaf node per worker id
	root    *treeNode
	sense   atomic.Uint32 // global release sense
}

// NewTree returns a tree barrier for the given party size.
func NewTree(parties int) *Tree {
	if parties < 1 {
		panic("barrier: parties must be >= 1")
	}
	b := &Tree{parties: parties}

	// Build the bottom level: one node per fan-in group of workers.
	level := make([]*treeNode, 0, (parties+treeFanIn-1)/treeFanIn)
	b.leaves = make([]*treeNode, parties)
	for base := 0; base < parties; base += treeFanIn {
		n := &treeNode{}
		width := min(treeFanIn, parties-base)
		n.init = int32(width)
		n.count.Store(n.init)
		for w := base; w < base+width; w++ {
			b.leaves[w] = n
		}
		level = append(level, n)
	}
	// Reduce levels until a single root remains.
	for len(level) > 1 {
		next := make([]*treeNode, 0, (len(level)+treeFanIn-1)/treeFanIn)
		for base := 0; base < len(level); base += treeFanIn {
			n := &treeNode{}
			width := min(treeFanIn, len(level)-base)
			n.init = int32(width)
			n.count.Store(n.init)
			for c := base; c < base+width; c++ {
				level[c].parent = n
			}
			next = append(next, n)
		}
		level = next
	}
	b.root = level[0]
	return b
}

// Parties returns the fixed party size.
func (b *Tree) Parties() int { return b.parties }

// Wait blocks worker id (0 <= worker < Parties()) until all parties of the
// current phase have arrived.
func (b *Tree) Wait(worker int) {
	local := b.sense.Load() ^ 1
	b.arrive(b.leaves[worker])
	for spins := 0; b.sense.Load() != local; spins++ {
		if spins > spinsBeforeYield {
			runtime.Gosched()
		}
	}
}

func (b *Tree) arrive(n *treeNode) {
	if n.count.Add(-1) != 0 {
		return
	}
	// Last arrival at this node: reset it for the next phase and continue
	// upward; at the root, flip the global sense to release everyone.
	n.count.Store(n.init)
	if n.parent != nil {
		b.arrive(n.parent)
		return
	}
	b.sense.Store(b.sense.Load() ^ 1)
}
