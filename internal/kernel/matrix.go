package kernel

import (
	"bytes"
	"fmt"
	"strconv"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/race"
	"crcwpram/internal/sched"
)

// NamedWorkload pairs a differential-matrix workload with the name error
// messages and progress output use.
type NamedWorkload struct {
	Name string
	W    Workload
}

// matrixSeed feeds the randomized kernels in the differential matrices.
const matrixSeed = 7

// MatrixWorkloads builds the fixed differential-matrix workloads for a
// descriptor's input kind. Graph kernels get a deep path (many rounds, tiny
// frontiers), a skewed RMAT graph, and a disconnected graph; list kernels a
// 300-element list with a late maximum and duplicates; chain kernels lists
// covering the n=1 / n=2 edge cases plus a pointer-jumping-boundary 257 and
// a bulk 2000.
func MatrixWorkloads(d *Descriptor) []NamedWorkload {
	switch d.Input {
	case InputList:
		list := make([]uint32, 300)
		for i := range list {
			list[i] = uint32((i * 131) % 197)
		}
		return []NamedWorkload{{"list300", Workload{List: list, Seed: matrixSeed}}}
	case InputChain:
		var out []NamedWorkload
		for _, n := range []int{1, 2, 257, 2000} {
			out = append(out, NamedWorkload{
				"chain" + strconv.Itoa(n),
				Workload{Next: Chain(n, matrixSeed), Seed: matrixSeed},
			})
		}
		return out
	default:
		return []NamedWorkload{
			{"path2000", Workload{Graph: graph.Path(2000), Seed: matrixSeed}},
			{"rmat", Workload{Graph: graph.RMAT(7, 600, 0.57, 0.19, 0.19, 9), Seed: matrixSeed}},
			{"disjoint", Workload{Graph: graph.Disjoint(graph.ConnectedRandom(60, 220, 5), 3), Seed: matrixSeed}},
		}
	}
}

// Chain builds a deterministic successor-pointer list of n nodes whose
// storage order is a seeded permutation of the list order (so chunked
// workers see scattered successors).
func Chain(n int, seed uint64) []uint32 {
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	s := seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	for i := n - 1; i > 0; i-- {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		j := int(s % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	next := make([]uint32, n)
	for i := 0; i < n-1; i++ {
		next[perm[i]] = perm[i+1]
	}
	if n > 0 {
		next[perm[n-1]] = ^uint32(0)
	}
	return next
}

// matrixMethods returns the methods the differential matrices drive for d:
// the full declared axis, minus Naive under the race detector (its benign
// races are exactly what the detector flags). Methodless kernels run once
// with the zero method.
func matrixMethods(d *Descriptor) []cw.Method {
	if len(d.Methods) == 0 {
		return []cw.Method{0}
	}
	out := make([]cw.Method, 0, len(d.Methods))
	for _, m := range d.Methods {
		if m == cw.Naive && race.Enabled {
			continue
		}
		out = append(out, m)
	}
	return out
}

// reprMethod picks the single method the repr and relabel matrices pin
// while sweeping their own axis: CAS-LT when the kernel supports it, the
// zero method otherwise.
func reprMethod(d *Descriptor) cw.Method {
	if len(d.Methods) == 0 || d.SupportsMethod(cw.CASLT) {
		return cw.CASLT
	}
	return d.Methods[0]
}

// matrixExecs is every backend the differential matrices cross-validate,
// the untimed trace replay included.
func matrixExecs() []machine.Exec {
	out := make([]machine.Exec, 0, len(machine.Execs)+1)
	out = append(out, machine.Execs...)
	return append(out, machine.ExecTrace)
}

// oneRun prepares, runs, and validates a single instance configuration and
// returns the projection (nil when the kernel is nondeterministic at p).
func oneRun(d *Descriptor, inst Instance, p int, s Settings) ([]byte, error) {
	inst.Prepare(s)
	out := inst.Run(s)
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !d.Deterministic(p) {
		return nil, nil
	}
	return d.Projection(out), nil
}

// DifferentialExec cross-validates every registered kernel across all
// execution backends at each worker count in ps: each run must validate,
// and the deterministic projection must be byte-identical to the pool
// reference. Kernels with a bitmap representation additionally run both
// representations on every backend, and the bitmap projection must equal
// the word projection.
func DifferentialExec(reg *Registry, ps []int) error {
	for _, d := range reg.All() {
		for _, nw := range MatrixWorkloads(d) {
			for _, p := range ps {
				if err := diffExecOne(d, nw, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func diffExecOne(d *Descriptor, nw NamedWorkload, p int) error {
	m := machine.New(p)
	defer m.Close()
	inst := d.New(m, nw.W)
	for _, method := range matrixMethods(d) {
		var want []byte
		for i, e := range matrixExecs() {
			got, err := oneRun(d, inst, p, Settings{Exec: e, Method: method})
			if err != nil {
				return fmt.Errorf("%s/%s p=%d %s/%s: %w", d.Name, nw.Name, p, method, e, err)
			}
			if i == 0 {
				want = got
			} else if !bytes.Equal(got, want) {
				return fmt.Errorf("%s/%s p=%d %s: %s diverges from %s",
					d.Name, nw.Name, p, method, e, matrixExecs()[0])
			}
		}
	}
	if d.Bitmap {
		method := reprMethod(d)
		var want []byte
		for i, e := range matrixExecs() {
			for _, bitmap := range []bool{false, true} {
				got, err := oneRun(d, inst, p, Settings{Exec: e, Method: method, Bitmap: bitmap})
				if err != nil {
					return fmt.Errorf("%s/%s p=%d bitmap=%v %s: %w", d.Name, nw.Name, p, bitmap, e, err)
				}
				if i == 0 && !bitmap {
					want = got
				} else if !bytes.Equal(got, want) {
					return fmt.Errorf("%s/%s p=%d: %s bitmap=%v diverges from word reference",
						d.Name, nw.Name, p, e, bitmap)
				}
			}
		}
	}
	return nil
}

// DifferentialPolicy cross-validates every registered kernel across all
// scheduling policies on 4-worker machines: every policy × timed backend
// must validate and project identically to the block/pool reference.
func DifferentialPolicy(reg *Registry) error {
	machines := make(map[sched.Policy]*machine.Machine, len(sched.Policies))
	for _, pol := range sched.Policies {
		m := machine.New(4, machine.WithPolicy(pol))
		defer m.Close()
		machines[pol] = m
	}
	for _, d := range reg.All() {
		for _, nw := range MatrixWorkloads(d) {
			for _, method := range matrixMethods(d) {
				var want []byte
				for i, pol := range sched.Policies {
					inst := d.New(machines[pol], nw.W)
					for _, e := range machine.Execs {
						got, err := oneRun(d, inst, 4, Settings{Exec: e, Method: method})
						if err != nil {
							return fmt.Errorf("%s/%s %s policy=%s %s: %w",
								d.Name, nw.Name, method, pol, e, err)
						}
						if i == 0 && e == machine.Execs[0] {
							want = got
						} else if !bytes.Equal(got, want) {
							return fmt.Errorf("%s/%s %s: policy=%s %s diverges from %s/%s",
								d.Name, nw.Name, method, pol, e, sched.Policies[0], machine.Execs[0])
						}
					}
				}
			}
		}
	}
	return nil
}

// DifferentialRelabel checks every relabelable kernel under each CSR
// relabeling mode at each worker count in ps: the result computed on the
// permuted graph, unpermuted back to original vertex ids, must validate on
// the permuted graph and project identically to the unrelabeled pool
// reference. Bitmap kernels run both representations.
func DifferentialRelabel(reg *Registry, ps []int) error {
	for _, d := range reg.All() {
		if !d.Relabelable || d.Input != InputGraph {
			continue
		}
		for _, nw := range MatrixWorkloads(d) {
			for _, p := range ps {
				if err := diffRelabelOne(d, nw, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func diffRelabelOne(d *Descriptor, nw NamedWorkload, p int) error {
	m := machine.New(p)
	defer m.Close()
	method := reprMethod(d)
	ref := d.New(m, nw.W)
	want, err := oneRun(d, ref, p, Settings{Exec: machine.ExecPool, Method: method})
	if err != nil {
		return fmt.Errorf("%s/%s p=%d reference: %w", d.Name, nw.Name, p, err)
	}
	reprs := []bool{false}
	if d.Bitmap {
		reprs = append(reprs, true)
	}
	for _, mode := range graph.RelabelModes {
		if mode == graph.RelabelNone {
			continue
		}
		rl := graph.Relabel(nw.W.Graph, mode)
		w := nw.W
		w.Graph = rl.G
		w.Source = rl.Perm[nw.W.Source]
		inst := d.New(m, w)
		for _, e := range matrixExecs() {
			for _, bitmap := range reprs {
				s := Settings{Exec: e, Method: method, Bitmap: bitmap}
				inst.Prepare(s)
				out := inst.Run(s)
				if err := inst.Validate(); err != nil {
					return fmt.Errorf("%s/%s p=%d relabel=%s %s bitmap=%v: %w",
						d.Name, nw.Name, p, mode, e, bitmap, err)
				}
				if !d.Deterministic(p) || want == nil {
					continue
				}
				// Unpermuting restores vertex order; Canon (for
				// label-valued vectors like CC partitions) then erases the
				// renamed label values, so the projection is id-invariant.
				unperm := make([]uint32, len(out.Vector))
				rl.Unpermute(unperm, out.Vector)
				got := d.Projection(Outcome{Vector: unperm, Depth: out.Depth})
				if !bytes.Equal(got, want) {
					return fmt.Errorf("%s/%s p=%d relabel=%s %s bitmap=%v: unpermuted result diverges",
						d.Name, nw.Name, p, mode, e, bitmap)
				}
			}
		}
	}
	return nil
}

// Smoke executes every (kernel, axis, value) combination once on a small
// 2-worker machine and validates each run: the registry completeness test
// drives it so that a descriptor declaring an axis it cannot actually run
// fails loudly.
func Smoke(reg *Registry) error {
	for _, d := range reg.All() {
		nw := MatrixWorkloads(d)[0]
		m := machine.New(2)
		inst := d.New(m, nw.W)
		base := Settings{Exec: machine.ExecPool, Method: reprMethod(d)}
		for _, ax := range d.Axes() {
			for _, val := range ax.Values {
				s := base
				var inst2 Instance
				var m2 *machine.Machine
				switch ax.Name {
				case AxisMethod:
					mm, ok := cw.ParseMethod(val)
					if !ok {
						return fmt.Errorf("%s: unparseable method %q", d.Name, val)
					}
					if mm == cw.Naive && race.Enabled {
						continue
					}
					s.Method = mm
				case AxisExec:
					e, ok := machine.ParseExec(val)
					if !ok {
						return fmt.Errorf("%s: unparseable exec %q", d.Name, val)
					}
					s.Exec = e
				case AxisPolicy:
					pol, ok := sched.ParsePolicy(val)
					if !ok {
						return fmt.Errorf("%s: unparseable policy %q", d.Name, val)
					}
					m2 = machine.New(2, machine.WithPolicy(pol))
					inst2 = d.New(m2, nw.W)
				case AxisBalance:
					b, ok := graph.ParseBalance(val)
					if !ok {
						return fmt.Errorf("%s: unparseable balance %q", d.Name, val)
					}
					s.Balance = b
				case AxisRepr:
					s.Bitmap = val == "bitmap"
				case AxisRelabel:
					mode, ok := graph.ParseRelabel(val)
					if !ok {
						return fmt.Errorf("%s: unparseable relabel %q", d.Name, val)
					}
					rl := graph.Relabel(nw.W.Graph, mode)
					w := nw.W
					w.Graph = rl.G
					w.Source = rl.Perm[nw.W.Source]
					inst2 = d.New(m, w)
				}
				run := inst
				if inst2 != nil {
					run = inst2
				}
				run.Prepare(s)
				run.Run(s)
				if err := run.Validate(); err != nil {
					m.Close()
					if m2 != nil {
						m2.Close()
					}
					return fmt.Errorf("%s: smoke %s=%s: %w", d.Name, ax.Name, val, err)
				}
				if m2 != nil {
					m2.Close()
				}
			}
		}
		m.Close()
	}
	return nil
}
