package kernel

import (
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// The fuzz targets below hold each axis parser to the registry's
// legal-value tables: a parser accepts a string exactly when
// ValidAxisValue does, and an accepted value round-trips through String()
// unchanged. This is the property that keeps -run parsing, the sweeps'
// axis products, and the JSON validator's accept sets from drifting apart
// — the tables in axes.go are derived from the same canonical slices the
// parsers match against, and these fuzzers fail the moment either side
// grows a value the other does not know.

// seedAxis seeds the corpus with every legal value plus near-misses.
func seedAxis(f *testing.F, axis string) {
	vals, _ := AxisValues(axis)
	for _, v := range vals {
		f.Add(v)
		f.Add(v + " ")
		f.Add("x" + v)
	}
	f.Add("")
	f.Add("block")
	f.Add("TRACE")
}

func FuzzParseExec(f *testing.F) {
	seedAxis(f, AxisExec)
	f.Fuzz(func(t *testing.T, s string) {
		e, ok := machine.ParseExec(s)
		if want := ValidAxisValue(AxisExec, s); ok != want {
			t.Fatalf("ParseExec(%q) ok=%v, axis table says %v", s, ok, want)
		}
		if ok && e.String() != s {
			t.Fatalf("ParseExec(%q).String() = %q", s, e.String())
		}
	})
}

func FuzzParseMethod(f *testing.F) {
	seedAxis(f, AxisMethod)
	f.Fuzz(func(t *testing.T, s string) {
		m, ok := cw.ParseMethod(s)
		if want := ValidAxisValue(AxisMethod, s); ok != want {
			t.Fatalf("ParseMethod(%q) ok=%v, axis table says %v", s, ok, want)
		}
		if ok && m.String() != s {
			t.Fatalf("ParseMethod(%q).String() = %q", s, m.String())
		}
	})
}

func FuzzParsePolicy(f *testing.F) {
	seedAxis(f, AxisPolicy)
	f.Fuzz(func(t *testing.T, s string) {
		p, ok := sched.ParsePolicy(s)
		if want := ValidAxisValue(AxisPolicy, s); ok != want {
			t.Fatalf("ParsePolicy(%q) ok=%v, axis table says %v", s, ok, want)
		}
		if ok && p.String() != s {
			t.Fatalf("ParsePolicy(%q).String() = %q", s, p.String())
		}
	})
}

func FuzzParseBalance(f *testing.F) {
	seedAxis(f, AxisBalance)
	f.Fuzz(func(t *testing.T, s string) {
		b, ok := graph.ParseBalance(s)
		if want := ValidAxisValue(AxisBalance, s); ok != want {
			t.Fatalf("ParseBalance(%q) ok=%v, axis table says %v", s, ok, want)
		}
		if ok && b.String() != s {
			t.Fatalf("ParseBalance(%q).String() = %q", s, b.String())
		}
	})
}

func FuzzParseRelabel(f *testing.F) {
	seedAxis(f, AxisRelabel)
	f.Fuzz(func(t *testing.T, s string) {
		m, ok := graph.ParseRelabel(s)
		if want := ValidAxisValue(AxisRelabel, s); ok != want {
			t.Fatalf("ParseRelabel(%q) ok=%v, axis table says %v", s, ok, want)
		}
		if ok && m.String() != s {
			t.Fatalf("ParseRelabel(%q).String() = %q", s, m.String())
		}
	})
}

// FuzzParseSelector throws arbitrary selector strings at the -run parser:
// it must never panic, and anything it accepts must be a selector whose
// every axis value the kernel's own axis tables also accept.
func FuzzParseSelector(f *testing.F) {
	f.Add("kernel=toy,method=caslt,exec=team")
	f.Add("kernel=toy,repr=bitmap,threads=4")
	f.Add("kernel=nope")
	f.Add("kernel=toy,method=caslt,method=mutex")
	f.Add("=,=,=")
	f.Add("kernel=toy,,,")
	f.Fuzz(func(t *testing.T, s string) {
		r := selectorRegistry()
		d, sel, err := r.ParseSelector(s)
		if err != nil {
			return
		}
		if sel[AxisKernel] != d.Name {
			t.Fatalf("accepted selector %q resolves kernel %q but carries %q", s, d.Name, sel[AxisKernel])
		}
		for k, v := range sel {
			if k == AxisKernel || k == AxisThreads {
				continue
			}
			legal := false
			for _, ax := range d.Axes() {
				if ax.Name != k {
					continue
				}
				for _, av := range ax.Values {
					if av == v {
						legal = true
					}
				}
			}
			if !legal {
				t.Fatalf("accepted selector %q carries illegal %s=%q", s, k, v)
			}
		}
	})
}
