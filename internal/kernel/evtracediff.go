package kernel

import (
	"bytes"
	"fmt"

	"crcwpram/internal/core/machine"
	evtrace "crcwpram/internal/core/trace"
)

// evtraceDiffCap is the per-worker ring capacity the tracing
// differential uses: small enough that the deep-path workloads wrap the
// rings, so the matrix also exercises flight-recorder overwrite under
// load.
const evtraceDiffCap = 512

// DifferentialEventTrace cross-validates every registered kernel with
// event tracing on against tracing off, at each worker count in ps: a
// machine carrying an event-trace flight recorder (which implies
// metrics) must validate every run and project byte-identically to a
// bare machine across both timed backends and every method — tracing
// observes the schedule, it must never perturb results. Each traced
// machine's drained timeline is additionally checked for structure:
// round spans must be present and summarized, and every span's worker
// must be in range.
func DifferentialEventTrace(reg *Registry, ps []int) error {
	for _, d := range reg.All() {
		for _, nw := range MatrixWorkloads(d) {
			for _, p := range ps {
				if err := diffEventTraceOne(d, nw, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func diffEventTraceOne(d *Descriptor, nw NamedWorkload, p int) error {
	plain := machine.New(p)
	defer plain.Close()
	rec := evtrace.New(p, evtraceDiffCap)
	traced := machine.New(p, machine.WithEventTrace(rec))
	defer traced.Close()
	refInst := d.New(plain, nw.W)
	evtInst := d.New(traced, nw.W)
	for _, method := range matrixMethods(d) {
		for _, e := range machine.Execs {
			s := Settings{Exec: e, Method: method}
			want, err := oneRun(d, refInst, p, s)
			if err != nil {
				return fmt.Errorf("%s/%s p=%d %s/%s untraced: %w", d.Name, nw.Name, p, method, e, err)
			}
			got, err := oneRun(d, evtInst, p, s)
			if err != nil {
				return fmt.Errorf("%s/%s p=%d %s/%s traced: %w", d.Name, nw.Name, p, method, e, err)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%s/%s p=%d %s/%s: traced result diverges from untraced",
					d.Name, nw.Name, p, method, e)
			}
			if err := checkTimeline(rec, p); err != nil {
				return fmt.Errorf("%s/%s p=%d %s/%s: %w", d.Name, nw.Name, p, method, e, err)
			}
			rec.Reset()
		}
	}
	return nil
}

// checkTimeline validates the structural invariants of a drained
// timeline after one traced run: some round spans survived, the
// summaries cover them, and every event stays within the worker tracks.
func checkTimeline(rec *evtrace.Recorder, p int) error {
	tl := rec.Drain()
	rounds := 0
	for _, ev := range tl.Spans {
		if ev.Worker < 0 || int(ev.Worker) >= p {
			return fmt.Errorf("timeline: span worker %d out of range [0,%d)", ev.Worker, p)
		}
		if ev.Dur < 0 {
			return fmt.Errorf("timeline: negative span duration %d", ev.Dur)
		}
		if ev.Kind == evtrace.KindRound {
			rounds++
		}
	}
	if rounds == 0 {
		return fmt.Errorf("timeline: no round spans recorded")
	}
	if len(tl.Rounds) == 0 {
		return fmt.Errorf("timeline: %d round spans but no summaries", rounds)
	}
	for _, rs := range tl.Rounds {
		if rs.Workers == 0 {
			return fmt.Errorf("timeline: round %d summary with no workers", rs.Round)
		}
		if rs.CritWorker < 0 || rs.CritWorker >= p {
			return fmt.Errorf("timeline: round %d crit worker %d out of range", rs.Round, rs.CritWorker)
		}
		if rs.EndNs < rs.StartNs {
			return fmt.Errorf("timeline: round %d ends before it starts", rs.Round)
		}
	}
	return nil
}
