package kernel

import (
	"reflect"
	"strings"
	"testing"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
)

// stubInstance satisfies Instance for registry-shape tests that never run.
type stubInstance struct{}

func (stubInstance) Prepare(Settings)        {}
func (stubInstance) Run(Settings) Outcome    { return Outcome{} }
func (stubInstance) Validate() error         { return nil }
func (stubInstance) Trace() *exec.TraceStats { return nil }

func stubNew(*machine.Machine, Workload) Instance { return stubInstance{} }

func TestRegistryRegisterValidation(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		d    Descriptor
		want string
	}{
		{Descriptor{Pkg: "p", New: stubNew}, "without a name"},
		{Descriptor{Name: "k", New: stubNew}, "without a package"},
		{Descriptor{Name: "k", Pkg: "p"}, "without a constructor"},
		{Descriptor{Name: "k", Pkg: "p", New: stubNew, Methods: []cw.Method{cw.Method(99)}}, "unknown method"},
	}
	for _, c := range cases {
		err := r.Register(c.d)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Register(%+v) = %v, want error containing %q", c.d, err, c.want)
		}
	}
	if err := r.Register(Descriptor{Name: "k", Pkg: "p", New: stubNew}); err != nil {
		t.Fatalf("valid descriptor rejected: %v", err)
	}
	if err := r.Register(Descriptor{Name: "k", Pkg: "q", New: stubNew}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate name accepted: %v", err)
	}
	d, ok := r.Lookup("k")
	if !ok || d.ProbeBoundFactor != 1 {
		t.Errorf("Lookup(k) = %+v, %v; want ProbeBoundFactor defaulted to 1", d, ok)
	}
}

func TestRegistryAllSorted(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.MustRegister(Descriptor{Name: n, Pkg: "p", New: stubNew})
	}
	if got := r.Names(); !reflect.DeepEqual(got, []string{"alpha", "mid", "zeta"}) {
		t.Errorf("Names() = %v, want sorted", got)
	}
	for i, d := range r.All() {
		if d.Name != r.Names()[i] {
			t.Errorf("All()[%d] = %s, out of order", i, d.Name)
		}
	}
}

func TestDescriptorAxes(t *testing.T) {
	full := Descriptor{
		Methods: cw.Methods, Bitmap: true, Balanced: true, Relabelable: true,
	}
	var names []string
	for _, ax := range full.Axes() {
		names = append(names, ax.Name)
		if len(ax.Values) == 0 {
			t.Errorf("axis %s has no values", ax.Name)
		}
	}
	want := []string{AxisMethod, AxisExec, AxisPolicy, AxisBalance, AxisRepr, AxisRelabel}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("full axes = %v, want %v", names, want)
	}

	bare := Descriptor{}
	names = nil
	for _, ax := range bare.Axes() {
		names = append(names, ax.Name)
	}
	if !reflect.DeepEqual(names, []string{AxisExec, AxisPolicy}) {
		t.Errorf("bare axes = %v, want [exec policy]", names)
	}
}

func TestProjection(t *testing.T) {
	d := Descriptor{}
	if got := d.Projection(Outcome{}); got != nil {
		t.Errorf("nil-vector projection = %v, want nil", got)
	}
	got := d.Projection(Outcome{Vector: []uint32{0x04030201}, Depth: 7})
	want := []byte{1, 2, 3, 4, 7, 0, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("projection = %v, want %v", got, want)
	}

	rev := Descriptor{Canon: func(v []uint32) []uint32 {
		out := make([]uint32, len(v))
		for i, x := range v {
			out[len(v)-1-i] = x
		}
		return out
	}}
	got = rev.Projection(Outcome{Vector: []uint32{1, 2}})
	want = []byte{2, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("canon projection = %v, want %v", got, want)
	}
}

func TestDeterministic(t *testing.T) {
	always := Descriptor{}
	serial := Descriptor{DetP: 1}
	if !always.Deterministic(64) {
		t.Error("DetP=0 must be deterministic at any p")
	}
	if !serial.Deterministic(1) || serial.Deterministic(2) {
		t.Error("DetP=1 must hold at p=1 only")
	}
}

func TestCanonicalPartition(t *testing.T) {
	got := CanonicalPartition([]uint32{9, 9, 3, 9, 3})
	want := []uint32{0, 0, 2, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CanonicalPartition = %v, want %v", got, want)
	}
}

func TestAxisValues(t *testing.T) {
	for _, axis := range []string{AxisMethod, AxisExec, AxisPolicy, AxisBalance, AxisRepr, AxisRelabel} {
		vals, ok := AxisValues(axis)
		if !ok || len(vals) == 0 {
			t.Errorf("AxisValues(%s) = %v, %v; want a non-empty table", axis, vals, ok)
		}
		for _, v := range vals {
			if !ValidAxisValue(axis, v) {
				t.Errorf("ValidAxisValue(%s, %s) = false for an enumerated value", axis, v)
			}
		}
		if ValidAxisValue(axis, "definitely-not-a-value") {
			t.Errorf("ValidAxisValue(%s) accepted junk", axis)
		}
	}
	if vals, ok := AxisValues(AxisThreads); !ok || vals != nil {
		t.Errorf("AxisValues(threads) = %v, %v; want (nil, true)", vals, ok)
	}
	if _, ok := AxisValues("voltage"); ok {
		t.Error("AxisValues accepted an unknown axis")
	}
	if ValidAxisValue(AxisThreads, "4") || ValidAxisValue(AxisKernel, "bfs") {
		t.Error("ValidAxisValue must reject non-enumerable axes")
	}
}

func selectorRegistry() *Registry {
	r := NewRegistry()
	r.MustRegister(Descriptor{
		Name: "toy", Pkg: "p", New: stubNew,
		Methods: []cw.Method{cw.CASLT}, Bitmap: true,
	})
	return r
}

func TestParseSelector(t *testing.T) {
	r := selectorRegistry()
	d, sel, err := r.ParseSelector(" kernel=toy , method=caslt, repr=bitmap, threads=8 ")
	if err != nil {
		t.Fatalf("legal selector rejected: %v", err)
	}
	if d.Name != "toy" || sel[AxisMethod] != "caslt" || sel[AxisThreads] != "8" {
		t.Errorf("parsed %s / %v", d.Name, sel)
	}

	bad := []struct{ sel, want string }{
		{"method=caslt", "missing kernel"},
		{"kernel=nope", "unknown kernel"},
		{"kernel=toy,method", "want axis=value"},
		{"kernel=toy,method=caslt,method=mutex", "duplicate axis"},
		{"kernel=toy,balance=edge", "no balance axis"},
		{"kernel=toy,method=mutex", `method="mutex" not in`},
		{"kernel=toy,voltage=9", "no voltage axis"},
	}
	for _, c := range bad {
		if _, _, err := r.ParseSelector(c.sel); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSelector(%q) = %v, want error containing %q", c.sel, err, c.want)
		}
	}
}
