package kernel

import (
	"bytes"
	"fmt"

	"crcwpram/internal/core/chaos"
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/core/metrics"
	"crcwpram/internal/sched"
)

// chaosWorkload picks the one workload DifferentialChaos drives per
// kernel: the skewed RMAT graph for graph kernels (contention on hubs is
// what the faults amplify), the pointer-jumping-boundary chain for chain
// kernels, the standard list otherwise. One workload keeps the matrix —
// which already multiplies kernels × methods × backends × policies ×
// seeds — affordable under the race detector.
func chaosWorkload(d *Descriptor) NamedWorkload {
	ws := MatrixWorkloads(d)
	switch d.Input {
	case InputGraph:
		return ws[1] // rmat
	case InputChain:
		return ws[2] // chain257
	default:
		return ws[0]
	}
}

// chaosSpan is the claim-index span the invariant checker covers for a
// workload: every instrumented claim site indexes cells by vertex (graph
// kernels), list element (maxfind), or chain node.
func chaosSpan(d *Descriptor, nw NamedWorkload) int {
	switch d.Input {
	case InputList:
		return len(nw.W.List)
	case InputChain:
		return len(nw.W.Next)
	default:
		return nw.W.Graph.NumVertices()
	}
}

// checkerEligible reports whether the invariant checker's winner and
// bound accounting is meaningful for a run of d under method: Naive and
// Mutex report every executed attempt as a win by design (no winner
// selection), so only the winner-selecting methods are checked.
func checkerEligible(method cw.Method) bool {
	switch method {
	case cw.Naive, cw.Mutex:
		return false
	}
	return true
}

// enableChaosChecker attaches a per-run invariant checker to m sized for
// the workload: winners-per-cell from the descriptor's probe-bound factor
// (matching commits its propose and accept winners into one shared index
// space), and the paper's ≤ factor×P executed-attempt bound enforced for
// CAS-LT runs of guarded kernels — exactly the discipline the contention
// sweep applies. Returns nil when the method has no winner selection.
func enableChaosChecker(m *machine.Machine, d *Descriptor, nw NamedWorkload, method cw.Method) *metrics.Checker {
	if !checkerEligible(method) {
		m.Metrics().DisableChecker()
		return nil
	}
	var bound uint64
	if method == cw.CASLT && d.Contention == ContentionGuarded {
		bound = uint64(d.ProbeBoundFactor) * uint64(m.P())
	}
	return m.Metrics().EnableChecker(chaosSpan(d, nw), uint64(d.ProbeBoundFactor), bound)
}

// DifferentialChaos runs every registered kernel under adversarial
// schedule perturbation and demands nothing changes: for each kernel ×
// method × timed backend (pool, team) × scheduling policy (block,
// stealing) × seed, a machine carrying a chaos.Injector with the given
// fault mask runs the kernel with the invariant checker attached, the run
// must validate, the checker must catch zero violations, and — for
// kernels deterministic at p — the projection must be byte-identical to
// an unperturbed pool/block reference. Kernels exposing the generic
// resolver hook additionally run a sticky-loser leg: a StickyResolver
// re-drives every lost claim and asserts no re-drive ever wins.
//
// A single Register call therefore buys a kernel chaos coverage for free,
// the same way it buys the exec/policy/relabel matrices.
func DifferentialChaos(reg *Registry, p int, seeds []uint64, faults chaos.Fault) error {
	for _, d := range reg.All() {
		if err := diffChaosOne(d, p, seeds, faults); err != nil {
			return err
		}
	}
	return nil
}

func diffChaosOne(d *Descriptor, p int, seeds []uint64, faults chaos.Fault) error {
	nw := chaosWorkload(d)

	// Unperturbed pool/block reference projections, one per method.
	ref := machine.New(p)
	refInst := d.New(ref, nw.W)
	want := map[cw.Method][]byte{}
	for _, method := range matrixMethods(d) {
		b, err := oneRun(d, refInst, p, Settings{Exec: machine.ExecPool, Method: method})
		if err != nil {
			ref.Close()
			return fmt.Errorf("%s/%s p=%d %s reference: %w", d.Name, nw.Name, p, method, err)
		}
		want[method] = b
	}
	ref.Close()

	for _, seed := range seeds {
		for _, pol := range []sched.Policy{sched.Block, sched.Stealing} {
			inj := chaos.NewInjector(p, seed, faults)
			m := machine.New(p, machine.WithPolicy(pol), machine.WithChaos(inj))
			inst := d.New(m, nw.W)
			for _, method := range matrixMethods(d) {
				for _, e := range machine.Execs {
					tag := fmt.Sprintf("%s/%s p=%d %s %s policy=%s seed=%d faults=%s",
						d.Name, nw.Name, p, method, e, pol, seed, faults)
					ck := enableChaosChecker(m, d, nw, method)
					got, err := oneRun(d, inst, p, Settings{Exec: e, Method: method})
					if err != nil {
						m.Close()
						return fmt.Errorf("%s: %w", tag, err)
					}
					if ck != nil {
						if err := ck.Err(); err != nil {
							m.Close()
							return fmt.Errorf("%s: %w", tag, err)
						}
					}
					if w := want[method]; w != nil && !bytes.Equal(got, w) {
						m.Close()
						return fmt.Errorf("%s: perturbed run diverges from unperturbed reference", tag)
					}
				}
			}
			if err := chaosResolverLeg(d, nw, m, inst, faults, seed, pol); err != nil {
				m.Close()
				return err
			}
			m.Close()
		}
	}
	return nil
}

// chaosResolverLeg drives kernels exposing the generic resolver hook
// through a sticky-loser resolver: every lost claim is re-driven within
// its round, and a re-drive that wins is a double commit the leg fails
// on. Only the winner-selecting resolver methods make sense here.
func chaosResolverLeg(d *Descriptor, nw NamedWorkload, m *machine.Machine, inst Instance, faults chaos.Fault, seed uint64, pol sched.Policy) error {
	rr, ok := inst.(ResolverRunner)
	if !ok || faults&chaos.FaultSticky == 0 {
		return nil
	}
	n := chaosSpan(d, nw)
	for _, method := range []cw.Method{cw.CASLT, cw.GatekeeperChecked} {
		if len(d.Methods) > 0 && !d.SupportsMethod(method) {
			continue
		}
		tag := fmt.Sprintf("%s/%s sticky-resolver %s policy=%s seed=%d", d.Name, nw.Name, method, pol, seed)
		ck := enableChaosChecker(m, d, nw, method)
		sr := chaos.NewStickyResolver(cw.NewResolver(method, n, cw.Packed))
		inst.Prepare(Settings{Exec: machine.ExecPool, Method: method})
		rr.RunResolver(machine.ExecPool, sr)
		if err := inst.Validate(); err != nil {
			return fmt.Errorf("%s: %w", tag, err)
		}
		if err := sr.Err(); err != nil {
			return fmt.Errorf("%s: %w", tag, err)
		}
		if ck != nil {
			if err := ck.Err(); err != nil {
				return fmt.Errorf("%s: %w", tag, err)
			}
		}
	}
	return nil
}
