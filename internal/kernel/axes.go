package kernel

import (
	"fmt"
	"sort"
	"strings"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
	"crcwpram/internal/sched"
)

// Axis is one sweepable dimension with its legal values in canonical
// order. The value tables below are THE accept sets: the sweeps expand
// them, -run parses against them, the fuzz tests hold the parsers to
// them, and the JSON validator rejects rows outside them.
type Axis struct {
	Name   string
	Values []string
}

// Canonical axis names, as they appear in JSON rows, -run selectors, and
// -list output.
const (
	AxisKernel  = "kernel"
	AxisMethod  = "method"
	AxisExec    = "exec"
	AxisPolicy  = "policy"
	AxisBalance = "balance"
	AxisRepr    = "repr"
	AxisRelabel = "relabel"
	AxisThreads = "threads"
)

// MethodValues lists every concurrent-write method name, in the cw
// package's presentation order.
func MethodValues() []string {
	out := make([]string, len(cw.Methods))
	for i, m := range cw.Methods {
		out[i] = m.String()
	}
	return out
}

// ExecValues lists every execution backend including the untimed trace
// replay (the differential matrices sweep it; the timed sweeps restrict
// themselves to TimedExecValues).
func ExecValues() []string {
	out := make([]string, 0, len(machine.Execs)+1)
	for _, e := range machine.Execs {
		out = append(out, e.String())
	}
	return append(out, machine.ExecTrace.String())
}

// TimedExecValues lists the backends whose wall time is meaningful.
func TimedExecValues() []string {
	out := make([]string, len(machine.Execs))
	for i, e := range machine.Execs {
		out[i] = e.String()
	}
	return out
}

// PolicyValues lists every scheduling policy.
func PolicyValues() []string {
	out := make([]string, len(sched.Policies))
	for i, p := range sched.Policies {
		out[i] = p.String()
	}
	return out
}

// BalanceValues lists the work-partitioning modes.
func BalanceValues() []string {
	out := make([]string, len(graph.Balances))
	for i, b := range graph.Balances {
		out[i] = b.String()
	}
	return out
}

// ReprValues lists the membership representations. "word" is the plain
// one-word-per-cell layout; "bitmap" the bit-packed cw.BitArray layout.
func ReprValues() []string { return []string{"word", "bitmap"} }

// RelabelValues lists the CSR relabeling modes.
func RelabelValues() []string {
	out := make([]string, len(graph.RelabelModes))
	for i, m := range graph.RelabelModes {
		out[i] = m.String()
	}
	return out
}

// AxisValues returns the global legal-value table for a named axis (the
// union across kernels; a kernel's own Axes() may restrict it further).
// The threads axis has no enumerable values and returns (nil, true).
func AxisValues(name string) ([]string, bool) {
	switch name {
	case AxisMethod:
		return MethodValues(), true
	case AxisExec:
		return ExecValues(), true
	case AxisPolicy:
		return PolicyValues(), true
	case AxisBalance:
		return BalanceValues(), true
	case AxisRepr:
		return ReprValues(), true
	case AxisRelabel:
		return RelabelValues(), true
	case AxisThreads:
		return nil, true
	}
	return nil, false
}

// ValidAxisValue reports whether value is legal for the named axis. It is
// the single membership predicate the JSON validator and the -run parser
// share, and the property the parser fuzz tests check the cw / machine /
// sched / graph parsers against: each package's Parse accepts exactly
// this set for its axis.
func ValidAxisValue(axis, value string) bool {
	vals, ok := AxisValues(axis)
	if !ok || vals == nil {
		return false
	}
	for _, v := range vals {
		if v == value {
			return true
		}
	}
	return false
}

// Selector is one parsed -run assignment set: axis name -> value.
type Selector map[string]string

// ParseSelector parses a "kernel=bfs,method=caslt,exec=team" string
// against the registry: the kernel key is required and must be
// registered, every other key must be an axis the kernel supports with a
// value on that axis (threads excepted, validated numerically by the
// caller).
func (r *Registry) ParseSelector(s string) (*Descriptor, Selector, error) {
	sel := Selector{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, nil, fmt.Errorf("selector %q: want axis=value", part)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if _, dup := sel[k]; dup {
			return nil, nil, fmt.Errorf("selector: duplicate axis %q", k)
		}
		sel[k] = v
	}
	name, ok := sel[AxisKernel]
	if !ok {
		return nil, nil, fmt.Errorf("selector: missing kernel= (registered: %s)",
			strings.Join(r.Names(), ", "))
	}
	d, ok := r.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("selector: unknown kernel %q (registered: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	axes := d.Axes()
	keys := make([]string, 0, len(sel))
	for k := range sel {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == AxisKernel || k == AxisThreads {
			continue
		}
		var ax *Axis
		for i := range axes {
			if axes[i].Name == k {
				ax = &axes[i]
				break
			}
		}
		if ax == nil {
			return nil, nil, fmt.Errorf("kernel %s has no %s axis", name, k)
		}
		legal := false
		for _, v := range ax.Values {
			if v == sel[k] {
				legal = true
				break
			}
		}
		if !legal {
			return nil, nil, fmt.Errorf("kernel %s: %s=%q not in {%s}",
				name, k, sel[k], strings.Join(ax.Values, ", "))
		}
	}
	return d, sel, nil
}
