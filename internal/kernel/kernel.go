// Package kernel is the registry of the suite's PRAM kernels: one
// Descriptor per kernel formulation (BFS sweep, BFS frontier, random-mate
// CC, ...) declaring the concurrent-write methods it supports, the axes it
// can be swept over (execution backend, scheduling policy, membership
// representation, work partitioning, CSR relabeling) with their legal
// values, how to instantiate it on a machine and workload, and how to
// project a validated result to a deterministic byte fingerprint.
//
// The registry is the single registration point the rest of the repo
// derives from:
//
//   - the bench sweeps (internal/bench + internal/bench/sweep) expand axis
//     products into runs without hand-wiring each kernel;
//   - the differential matrices (matrix.go, driven by the tests in
//     internal/integration) cross-validate every registered kernel across
//     backends × policies × representations × relabelings byte-for-byte;
//   - crcwbench's -list and -run flags introspect and select kernels
//     generically;
//   - the JSON validator checks row axis values against the same legal
//     sets (axes.go), so the accept/reject sets cannot drift.
//
// Adding a kernel (or a method alias of an existing one) is a single
// Register call: it then appears in the sweeps, in -list, and in the
// differential matrices with no other edits (see the extension test in
// internal/integration).
package kernel

import (
	"fmt"
	"sort"

	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/exec"
	"crcwpram/internal/core/machine"
	"crcwpram/internal/graph"
)

// Input classifies the workload a kernel consumes; the harnesses use it to
// build standard fixed-seed inputs without per-kernel wiring.
type Input int

const (
	// InputGraph kernels traverse Workload.Graph from Workload.Source.
	InputGraph Input = iota
	// InputList kernels consume Workload.List (maxfind).
	InputList
	// InputChain kernels consume Workload.Next, a successor-pointer list
	// (list ranking).
	InputChain
)

// Contention classifies a kernel for the live-contention sweep.
type Contention int

const (
	// ContentionNone kernels are skipped by the contention sweep: their
	// claim sites are not instrumented end to end (e.g. the exclusive-write
	// pull formulations, whose push-free rounds execute no guarded CW).
	ContentionNone Contention = iota
	// ContentionGuarded kernels run with the per-cell probe attached and,
	// under CAS-LT, have the paper's <=P executed-RMWs-per-cell-per-round
	// bound enforced (scaled by ProbeBoundFactor).
	ContentionGuarded
	// ContentionEREW kernels are the negative control: they execute no
	// concurrent writes, so their contention counters must stay zero.
	ContentionEREW
	// ContentionCAS kernels guard their writes with raw one-shot CAS claims
	// (frontier-style "claim if unvisited") that never consume round ids, so
	// their snapshots legitimately report zero rounds-to-convergence. The
	// contention sweep skips them: its row discipline requires the
	// round-structured protocol of the cw layer.
	ContentionCAS
)

// Workload is one prepared kernel input. Which fields are populated
// follows the descriptor's Input kind.
type Workload struct {
	Graph  *graph.Graph
	Source uint32
	List   []uint32
	Next   []uint32
	// Seed feeds the randomized kernels (random-mate CC, MIS, matching).
	Seed uint64
}

// StealMode selects the kernel-level stealing opt-in for one run.
type StealMode int

const (
	// StealDefault leaves the kernel's own degree-skew default in place.
	StealDefault StealMode = iota
	// StealOn pins the opt-in on (the policy sweeps pin it to the machine
	// policy so the axis is isolated).
	StealOn
	// StealOff pins the opt-in off.
	StealOff
)

// Settings is one fully resolved axis assignment for a run. The machine
// axes (worker count, scheduling policy, metrics) live on the machine the
// instance was built on; Settings carries the per-run kernel axes.
type Settings struct {
	Exec    machine.Exec
	Method  cw.Method
	Bitmap  bool
	Balance graph.Balance
	Steal   StealMode
}

// Outcome is the deterministic projection of one run: the per-element
// result vector plus the BFS depth (zero elsewhere). A kernel whose result
// is only deterministic up to the validator at high worker counts still
// returns its vector; Descriptor.DetP tells comparers when to trust it.
type Outcome struct {
	Vector []uint32
	Depth  int
}

// Instance is a kernel bound to one machine and workload. Prepare applies
// the run's axis settings and re-initializes state untimed (the paper's
// protocol excludes initialization from timing — representation and
// balance switches allocate there, not in the timed region), Run executes
// one full kernel run under the same settings without validating (so timed
// regions stay pure), and Validate checks the most recent Run's result
// against the kernel's oracle.
type Instance interface {
	Prepare(s Settings)
	Run(s Settings) Outcome
	Validate() error
	// Trace returns the structural trace of the most recent trace-backend
	// run (nil after a timed run).
	Trace() *exec.TraceStats
}

// ResolverRunner is the optional counting-resolver hook: kernels whose
// selection protocol can be swapped for an instrumented cw.Resolver
// implement it, and the op-count bench discovers them by assertion.
type ResolverRunner interface {
	RunResolver(e machine.Exec, r cw.Resolver) Outcome
}

// Descriptor declares one kernel to the registry.
type Descriptor struct {
	// Name identifies the kernel everywhere: sweeps, JSON rows, -run.
	Name string
	// Pkg is the registering algorithm package (completeness tests check
	// every package under internal/alg registers at least one kernel).
	Pkg string
	// Summary is the one-line description -list prints.
	Summary string

	// Methods are the legal -method axis values; empty means the kernel is
	// EREW or has its method fixed by construction (no method axis).
	Methods []cw.Method
	// Bitmap reports that the kernel supports the bit-packed membership
	// representation (the repr axis: word | bitmap).
	Bitmap bool
	// Balanced reports that the kernel honors the work-partitioning axis
	// (balance: vertex | edge).
	Balanced bool
	// Stealable reports that the kernel has a stealing opt-in
	// (SetStealing) for its irregular loops.
	Stealable bool
	// Relabelable marks graph kernels whose Vector is a per-vertex
	// quantity invariant under CSR relabeling (comparable after
	// unpermuting), enabling the relabel axis.
	Relabelable bool

	// Input classifies the workload kind.
	Input Input
	// Symmetric requires an undirected workload graph (bottom-up BFS, CC,
	// MIS, matching).
	Symmetric bool

	// Contention classifies the kernel for the live-contention sweep;
	// ProbeBoundFactor scales the paper's <=P per-cell bound (matching uses
	// 2: its propose and accept arrays share the probe's index space).
	Contention       Contention
	ProbeBoundFactor int

	// Canon canonicalizes Outcome.Vector before byte comparison (e.g. CC
	// partitions are compared up to label renaming); nil is identity.
	Canon func([]uint32) []uint32
	// DetP is the largest worker count at which the projection is
	// deterministic; 0 means always (matching uses 1: at P>1 the
	// arbitrary-write winners legitimately differ and only the validator
	// checks the run).
	DetP int

	// New binds the kernel to a machine and workload.
	New func(m *machine.Machine, w Workload) Instance
}

// MethodNames returns the descriptor's method axis values as strings.
func (d *Descriptor) MethodNames() []string {
	out := make([]string, len(d.Methods))
	for i, m := range d.Methods {
		out[i] = m.String()
	}
	return out
}

// Axes returns the kernel's swept axes with their legal values, in
// canonical presentation order. Every kernel has the exec and policy axes
// (they are machine-level); the rest follow the descriptor's declarations.
func (d *Descriptor) Axes() []Axis {
	var axes []Axis
	if len(d.Methods) > 0 {
		axes = append(axes, Axis{AxisMethod, d.MethodNames()})
	}
	axes = append(axes, Axis{AxisExec, ExecValues()})
	axes = append(axes, Axis{AxisPolicy, PolicyValues()})
	if d.Balanced {
		axes = append(axes, Axis{AxisBalance, BalanceValues()})
	}
	if d.Bitmap {
		axes = append(axes, Axis{AxisRepr, ReprValues()})
	}
	if d.Relabelable {
		axes = append(axes, Axis{AxisRelabel, RelabelValues()})
	}
	return axes
}

// SupportsMethod reports whether m is on the kernel's method axis.
func (d *Descriptor) SupportsMethod(m cw.Method) bool {
	for _, have := range d.Methods {
		if have == m {
			return true
		}
	}
	return false
}

// Projection flattens a validated outcome to the comparable byte
// fingerprint: the canonicalized vector little-endian plus the depth. A
// nil vector projects to nil (no deterministic projection).
func (d *Descriptor) Projection(o Outcome) []byte {
	if o.Vector == nil {
		return nil
	}
	v := o.Vector
	if d.Canon != nil {
		v = d.Canon(v)
	}
	out := make([]byte, 0, 4*len(v)+4)
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return append(out, byte(o.Depth), byte(o.Depth>>8), byte(o.Depth>>16), byte(o.Depth>>24))
}

// Deterministic reports whether the projection is byte-comparable at
// worker count p.
func (d *Descriptor) Deterministic(p int) bool {
	return d.DetP == 0 || p <= d.DetP
}

// CanonicalPartition renames component labels to the smallest vertex index
// of each class, making partitions comparable byte-for-byte regardless of
// which hook winners produced the labels.
func CanonicalPartition(labels []uint32) []uint32 {
	first := make(map[uint32]uint32, 16)
	out := make([]uint32, len(labels))
	for v, l := range labels {
		if _, ok := first[l]; !ok {
			first[l] = uint32(v)
		}
		out[v] = first[l]
	}
	return out
}

// Registry holds descriptors by name. The package-level Default registry
// is what the alg packages register into at init time; tests build private
// registries to exercise extension without polluting the suite.
type Registry struct {
	m map[string]*Descriptor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]*Descriptor{}} }

// Register adds a descriptor; duplicate names and structurally invalid
// descriptors are rejected.
func (r *Registry) Register(d Descriptor) error {
	switch {
	case d.Name == "":
		return fmt.Errorf("kernel: descriptor without a name")
	case d.Pkg == "":
		return fmt.Errorf("kernel %s: descriptor without a package", d.Name)
	case d.New == nil:
		return fmt.Errorf("kernel %s: descriptor without a constructor", d.Name)
	}
	if _, dup := r.m[d.Name]; dup {
		return fmt.Errorf("kernel %s: already registered", d.Name)
	}
	if d.ProbeBoundFactor == 0 {
		d.ProbeBoundFactor = 1
	}
	for _, m := range d.Methods {
		if _, ok := cw.ParseMethod(m.String()); !ok {
			return fmt.Errorf("kernel %s: unknown method %v", d.Name, m)
		}
	}
	r.m[d.Name] = &d
	return nil
}

// MustRegister is Register, panicking on error (init-time use).
func (r *Registry) MustRegister(d Descriptor) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Lookup returns the descriptor registered under name.
func (r *Registry) Lookup(name string) (*Descriptor, bool) {
	d, ok := r.m[name]
	return d, ok
}

// All returns every descriptor sorted by name — the deterministic order
// -list and the matrices iterate in.
func (r *Registry) All() []*Descriptor {
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Descriptor, len(names))
	for i, n := range names {
		out[i] = r.m[n]
	}
	return out
}

// Names returns the sorted kernel names.
func (r *Registry) Names() []string {
	ds := r.All()
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}

// Default is the process-wide registry the algorithm packages register
// into from init.
var Default = NewRegistry()

// Register adds a descriptor to the Default registry, panicking on error.
func Register(d Descriptor) { Default.MustRegister(d) }

// Lookup consults the Default registry.
func Lookup(name string) (*Descriptor, bool) { return Default.Lookup(name) }

// All lists the Default registry sorted by name.
func All() []*Descriptor { return Default.All() }
