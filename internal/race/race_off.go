//go:build !race

// Package race reports whether the Go race detector is compiled into the
// current binary. Tests of the intentionally racy naive concurrent-write
// variants (benign-by-construction common CW, reproducing the Rodinia code
// the paper measures) consult it to skip themselves under -race.
package race

// Enabled is true when the binary was built with -race.
const Enabled = false
