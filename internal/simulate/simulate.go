// Package simulate makes the CRCW conflict-resolution hierarchy of the
// paper's Section 2 executable: "a weaker strategy can be simulated by a
// more powerful one in O(1) time", and conversely a stronger strategy can
// be simulated by a weaker one at a work or depth premium (the paper's
// Section 3 surveys the corresponding literature, e.g. the T(log P) bound
// for simulating Priority on exclusive-write machines [JaJa 92]).
//
// The package fixes the textbook setting — P processors attempting one
// concurrent write step to a single shared cell under the Priority rule
// (smallest value wins, ties to the smallest writer id) — and implements
// it four ways on the machine:
//
//	Direct            priority hardware primitive (PriorityMinCell CAS loop)
//	ViaCommonAllPairs the O(1)-depth, W(P²) simulation on common CW — the
//	                  same all-pairs trick as the paper's Figure 4 maximum
//	ViaTournament     the W(P), D(log P) simulation using only exclusive
//	                  writes (matching the classic log-P bound)
//	ArbitraryViaPriority / CommonViaArbitrary — the trivial O(1)
//	                  downward simulations
//
// All implementations return the identical winner, which the tests check
// against a sequential reference; the benchmarks expose the work/depth
// price of each rung.
package simulate

import (
	"crcwpram/internal/core/cw"
	"crcwpram/internal/core/machine"
)

// Req is one processor's pending write: its value and its processor id.
// Priority order is (Value, Writer) lexicographic, smallest wins.
type Req struct {
	Value  uint32
	Writer uint32
}

// less reports whether a beats b under the Priority rule.
func less(a, b Req) bool {
	return a.Value < b.Value || (a.Value == b.Value && a.Writer < b.Writer)
}

// Sequential returns the priority winner by a plain scan — the reference
// all simulations must match. ok is false for an empty request set.
func Sequential(reqs []Req) (winner Req, ok bool) {
	if len(reqs) == 0 {
		return Req{}, false
	}
	w := reqs[0]
	for _, r := range reqs[1:] {
		if less(r, w) {
			w = r
		}
	}
	return w, true
}

// Direct performs the priority write step with the native priority
// primitive: every processor offers into one PriorityMinCell (a bounded
// CAS loop), W(P) and D(1) with a serialization factor bounded by the
// physical core count.
func Direct(m *machine.Machine, reqs []Req) (Req, bool) {
	if len(reqs) == 0 {
		return Req{}, false
	}
	var cell cw.PriorityMinCell
	cell.Reset()
	m.ParallelFor(len(reqs), func(i int) {
		cell.Offer(reqs[i].Value, reqs[i].Writer)
	})
	return Req{Value: cell.Value(), Writer: cell.ID()}, true
}

// ViaCommonAllPairs simulates the priority write using only *common*
// concurrent writes, in O(1) depth and W(P²) work: every ordered pair of
// requests is compared by its own virtual processor, and each comparison's
// loser is flagged "not the winner" — all writers of a flag write the same
// value, so the write is common (here guarded by CAS-LT, exactly like the
// paper's Figure 4 maximum kernel, which is this simulation specialized to
// max).
func ViaCommonAllPairs(m *machine.Machine, reqs []Req) (Req, bool) {
	p := len(reqs)
	if p == 0 {
		return Req{}, false
	}
	loser := make([]uint32, p)
	cells := cw.NewArray(p, cw.Packed)
	m.ParallelRange(p*p, func(lo, hi, _ int) {
		for k := lo; k < hi; k++ {
			i, j := k/p, k%p
			if i == j {
				continue
			}
			l := i
			if less(reqs[i], reqs[j]) {
				l = j
			}
			if cells.TryClaim(l, 1) {
				loser[l] = 1 // common CW: every writer writes 1
			}
		}
	})
	for i := 0; i < p; i++ {
		if loser[i] == 0 {
			return reqs[i], true
		}
	}
	// Unreachable: exactly one request survives all comparisons.
	panic("simulate: all-pairs elimination left no winner")
}

// ViaTournament simulates the priority write with exclusive writes only
// (EREW): a balanced binary tournament of D(log P) rounds and W(P) work,
// double-buffered so each round's reads and writes never touch the same
// cell. This matches the classic log-P simulation bound for priority
// writes on exclusive-write machines.
func ViaTournament(m *machine.Machine, reqs []Req) (Req, bool) {
	p := len(reqs)
	if p == 0 {
		return Req{}, false
	}
	cur := make([]Req, p)
	m.ParallelFor(p, func(i int) { cur[i] = reqs[i] })
	next := make([]Req, (p+1)/2)
	for width := p; width > 1; {
		half := (width + 1) / 2
		m.ParallelFor(half, func(i int) {
			if 2*i+1 >= width {
				next[i] = cur[2*i]
				return
			}
			a, b := cur[2*i], cur[2*i+1]
			if less(b, a) {
				next[i] = b
			} else {
				next[i] = a
			}
		})
		cur, next = next, cur
		width = half
	}
	return cur[0], true
}

// ArbitraryViaPriority implements an *arbitrary* write step on top of the
// priority primitive in O(1): every processor offers with its own id as
// the priority key, and whichever wins is "some" processor — a valid
// arbitrary outcome. Returns the committed request.
func ArbitraryViaPriority(m *machine.Machine, reqs []Req) (Req, bool) {
	p := len(reqs)
	if p == 0 {
		return Req{}, false
	}
	var cell cw.PriorityMinCell
	cell.Reset()
	m.ParallelFor(p, func(i int) {
		// Key by writer id: the winner is arbitrary-but-consistent, and
		// the payload (the request index) rides along.
		cell.Offer(reqs[i].Writer, uint32(i))
	})
	return reqs[cell.ID()], true
}

// CommonViaArbitrary implements a *common* write step on top of the
// arbitrary primitive in O(1): since every processor writes the same
// value, committing any single writer's value is correct. It returns the
// committed value and, when verify is set, additionally checks the common
// precondition (all requests equal) the way the memcheck package would,
// reporting violated=true if two processors disagreed — the misuse that
// makes naive "common" writes of arbitrary data unsafe.
func CommonViaArbitrary(m *machine.Machine, values []uint32, verify bool) (committed uint32, violated bool, ok bool) {
	p := len(values)
	if p == 0 {
		return 0, false, false
	}
	var slot cw.Slot[uint32]
	var mismatch cw.MaxCell
	first := values[0]
	m.ParallelFor(p, func(i int) {
		slot.TryWrite(1, values[i])
		if verify && values[i] != first {
			mismatch.Offer(1) // combining CW: any disagreement raises the flag
		}
	})
	return slot.Load(), mismatch.Load() != 0, true
}

// WorkDepth reports the theoretical work and depth of each simulation for
// p processors, for documentation and the harness's tables.
func WorkDepth(sim string, p int) (work, depth int) {
	switch sim {
	case "direct", "arbitrary-via-priority", "common-via-arbitrary":
		return p, 1
	case "common-all-pairs":
		return p * p, 1
	case "tournament":
		d := 0
		for w := p; w > 1; w = (w + 1) / 2 {
			d++
		}
		return p, d
	default:
		return 0, 0
	}
}
