package simulate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"crcwpram/internal/core/machine"
)

func testMachine(t *testing.T, p int) *machine.Machine {
	t.Helper()
	m := machine.New(p)
	t.Cleanup(m.Close)
	return m
}

func randReqs(n int, seed int64) []Req {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Req, n)
	for i := range reqs {
		reqs[i] = Req{Value: uint32(rng.Intn(50)), Writer: uint32(i)}
	}
	return reqs
}

func TestSequentialReference(t *testing.T) {
	if _, ok := Sequential(nil); ok {
		t.Fatal("empty set has a winner")
	}
	w, ok := Sequential([]Req{{5, 2}, {3, 7}, {3, 1}, {9, 0}})
	if !ok || w != (Req{3, 1}) {
		t.Fatalf("winner = %+v, want {3 1}", w)
	}
}

func TestAllSimulationsAgree(t *testing.T) {
	for _, p := range []int{1, 4} {
		m := testMachine(t, p)
		for _, n := range []int{1, 2, 3, 7, 64, 200} {
			for trial := 0; trial < 5; trial++ {
				reqs := randReqs(n, int64(n*100+trial))
				want, _ := Sequential(reqs)
				if got, ok := Direct(m, reqs); !ok || got != want {
					t.Fatalf("p=%d n=%d direct: %+v, want %+v", p, n, got, want)
				}
				if got, ok := ViaCommonAllPairs(m, reqs); !ok || got != want {
					t.Fatalf("p=%d n=%d all-pairs: %+v, want %+v", p, n, got, want)
				}
				if got, ok := ViaTournament(m, reqs); !ok || got != want {
					t.Fatalf("p=%d n=%d tournament: %+v, want %+v", p, n, got, want)
				}
			}
		}
	}
}

func TestEmptyRequestSets(t *testing.T) {
	m := testMachine(t, 2)
	if _, ok := Direct(m, nil); ok {
		t.Fatal("Direct accepted empty set")
	}
	if _, ok := ViaCommonAllPairs(m, nil); ok {
		t.Fatal("ViaCommonAllPairs accepted empty set")
	}
	if _, ok := ViaTournament(m, nil); ok {
		t.Fatal("ViaTournament accepted empty set")
	}
	if _, ok := ArbitraryViaPriority(m, nil); ok {
		t.Fatal("ArbitraryViaPriority accepted empty set")
	}
	if _, _, ok := CommonViaArbitrary(m, nil, true); ok {
		t.Fatal("CommonViaArbitrary accepted empty set")
	}
}

func TestArbitraryViaPriorityReturnsSomeRequest(t *testing.T) {
	m := testMachine(t, 4)
	reqs := randReqs(50, 3)
	got, ok := ArbitraryViaPriority(m, reqs)
	if !ok {
		t.Fatal("no winner")
	}
	found := false
	for _, r := range reqs {
		if r == got {
			found = true
		}
	}
	if !found {
		t.Fatalf("returned %+v, not one of the requests", got)
	}
	// Writer id 0 at index 0 exercises the priority cell's corner.
	one := []Req{{Value: 17, Writer: 0}}
	if got, ok := ArbitraryViaPriority(m, one); !ok || got != one[0] {
		t.Fatalf("single-request corner: %+v", got)
	}
}

func TestCommonViaArbitrary(t *testing.T) {
	m := testMachine(t, 4)
	vals := make([]uint32, 64)
	for i := range vals {
		vals[i] = 42
	}
	got, violated, ok := CommonViaArbitrary(m, vals, true)
	if !ok || violated || got != 42 {
		t.Fatalf("common write: got=%d violated=%v ok=%v", got, violated, ok)
	}
	// A disagreeing writer is detected when verification is on.
	vals[13] = 7
	_, violated, _ = CommonViaArbitrary(m, vals, true)
	if !violated {
		t.Fatal("uncommon values not flagged")
	}
	// ...and tolerated (arbitrary winner) when off.
	got, violated, _ = CommonViaArbitrary(m, vals, false)
	if violated {
		t.Fatal("verification ran while off")
	}
	if got != 42 && got != 7 {
		t.Fatalf("committed %d, not any writer's value", got)
	}
}

func TestWorkDepth(t *testing.T) {
	cases := []struct {
		sim         string
		p           int
		work, depth int
	}{
		{"direct", 100, 100, 1},
		{"common-all-pairs", 100, 10000, 1},
		{"tournament", 8, 8, 3},
		{"tournament", 100, 100, 7},
		{"arbitrary-via-priority", 5, 5, 1},
		{"common-via-arbitrary", 5, 5, 1},
		{"unknown", 5, 0, 0},
	}
	for _, c := range cases {
		w, d := WorkDepth(c.sim, c.p)
		if w != c.work || d != c.depth {
			t.Errorf("WorkDepth(%s, %d) = (%d, %d), want (%d, %d)", c.sim, c.p, w, d, c.work, c.depth)
		}
	}
}

// Property: every simulation returns the sequential priority winner for
// arbitrary request multisets (including heavy ties).
func TestQuickSimulationsAgree(t *testing.T) {
	m := testMachine(t, 4)
	f := func(valsRaw []uint8) bool {
		if len(valsRaw) == 0 || len(valsRaw) > 150 {
			return true
		}
		reqs := make([]Req, len(valsRaw))
		for i, v := range valsRaw {
			reqs[i] = Req{Value: uint32(v % 8), Writer: uint32(i)} // force ties
		}
		want, _ := Sequential(reqs)
		d, _ := Direct(m, reqs)
		a, _ := ViaCommonAllPairs(m, reqs)
		tn, _ := ViaTournament(m, reqs)
		return d == want && a == want && tn == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulations(b *testing.B) {
	m := machine.New(4)
	defer m.Close()
	for _, n := range []int{64, 512} {
		reqs := randReqs(n, int64(n))
		b.Run("direct/p="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Direct(m, reqs)
			}
		})
		b.Run("all-pairs/p="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ViaCommonAllPairs(m, reqs)
			}
		})
		b.Run("tournament/p="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ViaTournament(m, reqs)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
