package doccheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestGodocCoverage asserts that every exported identifier in the core
// layers — the cw/exec/machine/metrics/chaos packages, the scheduler, and
// the kernel registry — carries a doc comment. These are the packages the
// rest of the repository programs against; an undocumented export here is
// an API without a contract.
func TestGodocCoverage(t *testing.T) {
	root := repoRoot(t)
	gaps, err := UndocumentedExports(
		filepath.Join(root, "internal", "core"),
		filepath.Join(root, "internal", "kernel"),
		filepath.Join(root, "internal", "sched"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(gaps), strings.Join(gaps, "\n  "))
	}
}

// TestMarkdownLinks asserts that every intra-repo link in the top-level
// documents resolves to a file that exists.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	docs := []string{"README.md", "DESIGN.md", "ARCHITECTURE.md", "EXPERIMENTS.md"}
	var files []string
	for _, d := range docs {
		path := filepath.Join(root, d)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("required document missing: %s", d)
		}
		files = append(files, path)
	}
	broken, err := BrokenMarkdownLinks(files...)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) > 0 {
		t.Errorf("%d broken intra-repo markdown links:\n  %s",
			len(broken), strings.Join(broken, "\n  "))
	}
}

// TestWalkerSelfCheck pins the walker's own semantics on this package:
// doccheck documents all its exports, so the walk over it must be clean —
// and the walk must actually visit files (a silently empty walk would
// green-light everything).
func TestWalkerSelfCheck(t *testing.T) {
	root := repoRoot(t)
	gaps, err := UndocumentedExports(filepath.Join(root, "internal", "doccheck"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 0 {
		t.Fatalf("doccheck itself has gaps: %v", gaps)
	}
	// Negative control: a fixture with a known gap must be reported.
	dir := t.TempDir()
	src := "package fixture\n\nfunc Exported() {}\n\n// Documented does things.\nfunc Documented() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	gaps, err = UndocumentedExports(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(gaps) != 1 || !strings.HasSuffix(gaps[0], "Exported") {
		t.Fatalf("fixture gaps = %v, want exactly the undocumented Exported", gaps)
	}
}

// TestLinkCheckerSelfCheck pins the link checker on fixtures: a broken
// relative link is reported, external links and fragments are not.
func TestLinkCheckerSelfCheck(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "real.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "[ok](real.md) [frag](real.md#sec) [ext](https://example.com/x) [anchor](#here) [gone](missing.md)\n"
	path := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	broken, err := BrokenMarkdownLinks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(broken) != 1 || !strings.Contains(broken[0], "missing.md") {
		t.Fatalf("broken = %v, want exactly missing.md", broken)
	}
}
