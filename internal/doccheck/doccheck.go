// Package doccheck holds the repository's documentation lint: a
// godoc-coverage walker asserting that every exported identifier in the
// core packages carries a doc comment, and a markdown link checker
// asserting that the intra-repo links in the top-level documents resolve.
// Both run as ordinary tests (the CI docs job invokes this package), so
// documentation rot fails a build instead of accumulating silently.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// UndocumentedExports parses every non-test Go file under each given
// directory (recursively) and returns one "file:line: identifier" entry
// for every exported top-level identifier — function, method, type,
// const, var — that has no doc comment. A doc comment on a grouped
// declaration (const/var block or a spec-level comment inside it) covers
// the group's names.
func UndocumentedExports(dirs ...string) ([]string, error) {
	var gaps []string
	fset := token.NewFileSet()
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return err
			}
			gaps = append(gaps, fileGaps(fset, f)...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return gaps, nil
}

// fileGaps collects the undocumented exported declarations of one file.
func fileGaps(fset *token.FileSet, f *ast.File) []string {
	var gaps []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		gaps = append(gaps, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				name := d.Name.Name
				if d.Recv != nil && len(d.Recv.List) == 1 {
					if rn := recvTypeName(d.Recv.List[0].Type); rn != "" {
						// Methods on unexported receivers are not part of
						// the exported API surface unless the type leaks
						// through an exported identifier; interface
						// satisfaction is the common case, and its
						// contract is documented on the interface. Skip.
						if !ast.IsExported(rn) {
							continue
						}
						name = rn + "." + name
					}
				}
				report(d.Pos(), name)
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil {
						report(s.Pos(), s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), n.Name)
						}
					}
				}
			}
		}
	}
	return gaps
}

// recvTypeName unwraps a method receiver type to its base identifier.
func recvTypeName(t ast.Expr) string {
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// mdLink matches inline markdown links and images; the first group is the
// target. Reference-style links are not used in this repository.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

// BrokenMarkdownLinks reads each given markdown file and returns one
// "file: target" entry per intra-repository link whose target does not
// exist on disk, resolved relative to the file's directory. External
// links (schemes), pure fragments (#section), and fragments on existing
// files are not verified beyond the file's existence.
func BrokenMarkdownLinks(files ...string) ([]string, error) {
	var broken []string
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		base := filepath.Dir(file)
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(base, target)); err != nil {
				broken = append(broken, fmt.Sprintf("%s: %s", file, m[1]))
			}
		}
	}
	return broken, nil
}
